package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/journal"
)

// DefaultWorkerTTL is how long a registered worker may go without
// polling (or posting results) before the coordinator declares it
// dead and reroutes its work.
const DefaultWorkerTTL = 15 * time.Second

// maxPollWait caps a worker's requested long-poll duration.
const maxPollWait = 30 * time.Second

// DefaultTaskRetries is the per-task retry budget: how many failed
// attempts (worker expiries while assigned, worker-reported
// failures, lost incarnations) a task absorbs before it is
// quarantined as poisoned instead of rerouted again.
const DefaultTaskRetries = 3

// DefaultRetryBase is the base delay of the exponential retry
// backoff; retry n parks the task for roughly base<<(n-1), jittered.
const DefaultRetryBase = 250 * time.Millisecond

// maxRetryDelay caps the exponential backoff.
const maxRetryDelay = 15 * time.Second

// maxTaskHistory bounds a task's recorded attempt history.
const maxTaskHistory = 32

// cluster is the coordinator's dispatcher: registered workers pull
// spec batches, execute them on their own machines, and stream
// results back; the coordinator routes each spec to one worker by key
// shard and coalesces duplicate in-flight keys so a spec requested by
// ten concurrent sweeps crosses the wire — and simulates — once.
//
// Failure semantics: a worker that stops polling (or heartbeating)
// past the TTL is expired and its queued and assigned tasks reroute
// to the surviving workers; with no workers left a task is orphaned
// until either a new worker registers or a waiting request claims it
// for local execution. A result is accepted only from the live worker
// the task is currently assigned to, and only when it matches the
// task's spec — anything else is dropped as stale (late, reassigned,
// replayed) or rejected (mislabeled, forged) without touching the
// cache or store. Results are content-addressed, so dropping a
// duplicate loses nothing.
type cluster struct {
	ttl        time.Duration
	maxRetries int
	retryBase  time.Duration
	// journal receives poison records (nil = in-memory quarantine
	// only).
	journal *journal.Journal

	mu sync.Mutex
	// workers holds the live fleet by id. // guarded by mu
	workers map[string]*clusterWorker
	// pending holds the one open task per key (the coalescing map,
	// spanning queued, assigned, parked and orphaned tasks).
	// // guarded by mu
	pending map[harness.Key]*clusterTask
	// orphans are tasks routed nowhere: no live worker owned their
	// shard when they were (re)routed. // guarded by mu
	orphans []*clusterTask
	// poisoned maps quarantined keys to the failure message their
	// submissions fail fast with. // guarded by mu
	poisoned map[harness.Key]string

	dispatched    atomic.Uint64 // tasks handed to a worker
	completed     atomic.Uint64 // tasks finished by a worker result
	requeued      atomic.Uint64 // task reroutes after a worker expiry
	coalesced     atomic.Uint64 // submissions that joined an open task
	localRuns     atomic.Uint64 // orphaned tasks claimed for local execution
	stale         atomic.Uint64 // results for closed tasks or from non-owners
	rejected      atomic.Uint64 // results inconsistent with their task's spec
	retries       atomic.Uint64 // failed attempts charged against retry budgets
	poisonedTotal atomic.Uint64 // tasks quarantined after exhausting their budget
	drained       atomic.Uint64 // workers that deregistered gracefully
}

// clusterWorker is one registered worker's dispatch state.
type clusterWorker struct {
	id string
	// queue holds routed tasks the worker has not pulled yet.
	queue []*clusterTask
	// assigned holds pulled tasks awaiting results.
	assigned map[harness.Key]*clusterTask
	// wake pokes a long-polling worker when work arrives.
	wake chan struct{}
	// lastSeen is the worker's latest register/poll/results contact.
	lastSeen time.Time
}

// clusterTask is one in-flight spec execution. res and err are
// written before done is closed and read only after, exactly like a
// flightCall; every other field is guarded by the cluster lock.
type clusterTask struct {
	key  harness.Key
	spec harness.Spec
	// worker is the owning worker's id, "" while orphaned or parked.
	worker string
	// claimed marks an orphaned task a waiter took for local
	// execution; finished guards against double completion (a local
	// claim racing a late worker result).
	claimed  bool
	finished bool
	// parked marks a task sitting out its retry backoff; an AfterFunc
	// reroutes it when the delay elapses (or a waiter claims it
	// first — parked tasks look orphaned to claimOrphan).
	parked bool
	// retries counts failed attempts charged against the budget.
	retries int
	// history records the task's routing and failure history, oldest
	// first, capped at maxTaskHistory.
	history []string

	done chan struct{}
	res  *harness.Result
	err  error
}

// noteLocked appends one attempt-history entry. caller holds mu.
func (t *clusterTask) noteLocked(entry string) {
	if len(t.history) >= maxTaskHistory {
		t.history = append(t.history[:0], t.history[len(t.history)-maxTaskHistory+1:]...)
	}
	t.history = append(t.history, entry)
}

func newCluster(ttl time.Duration, maxRetries int, retryBase time.Duration, jl *journal.Journal) *cluster {
	if ttl <= 0 {
		ttl = DefaultWorkerTTL
	}
	switch {
	case maxRetries == 0:
		maxRetries = DefaultTaskRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	if retryBase <= 0 {
		retryBase = DefaultRetryBase
	}
	// Preload the persisted quarantine so poisoned specs fail fast
	// across restarts instead of burning a fresh budget each boot.
	poisoned := make(map[harness.Key]string)
	if jl != nil {
		for hexKey, rec := range jl.Poisoned() {
			key, err := harness.ParseKey(hexKey)
			if err != nil {
				continue
			}
			poisoned[key] = poisonMessage(key, len(rec.Attempts), rec.Attempts)
		}
	}
	return &cluster{
		ttl:        ttl,
		maxRetries: maxRetries,
		retryBase:  retryBase,
		journal:    jl,
		workers:    make(map[string]*clusterWorker),
		pending:    make(map[harness.Key]*clusterTask),
		poisoned:   poisoned,
	}
}

// poisonMessage renders the failure a poisoned key's submissions are
// answered with, attempt history included.
func poisonMessage(key harness.Key, attempts int, history []string) string {
	msg := fmt.Sprintf("serve: task %s poisoned after %d failed attempts", key, attempts)
	if len(history) > 0 {
		msg += " [" + strings.Join(history, "; ") + "]"
	}
	return msg
}

// register adds (or resets) a worker. Re-registration under a live id
// reroutes whatever the previous incarnation held — the worker
// restarting means those pulls are gone. Orphaned tasks route onto
// the refreshed fleet.
func (c *cluster) register(id string, now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if prev, ok := c.workers[id]; ok {
		delete(c.workers, id)
		// The previous incarnation's pulled tasks died with it; charge
		// their retry budgets like an expiry. Queued tasks were never
		// attempted and reroute free.
		c.dropWorkerLocked(prev, fmt.Sprintf("worker %s re-registered (previous incarnation dropped)", id), true)
	}
	c.workers[id] = &clusterWorker{
		id:       id,
		assigned: make(map[harness.Key]*clusterTask),
		wake:     make(chan struct{}, 1),
		lastSeen: now,
	}
	orphans := c.orphans
	c.orphans = nil
	for _, t := range orphans {
		c.routeLocked(t)
	}
	return len(c.workers)
}

// submit opens (or joins) the task for key. It returns the task plus
// whether the caller created it and — when no live worker could own
// it — whether the caller must execute it locally instead.
func (c *cluster) submit(key harness.Key, spec harness.Spec, now time.Time) (t *clusterTask, created, runLocal bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if msg, ok := c.poisoned[key]; ok {
		// Quarantined: fail fast with the recorded attempt history
		// instead of burning another budget. The failure travels as a
		// failed result (not an engine error) so callers surface it per
		// spec and nothing reaches the cache or store.
		t = &clusterTask{key: key, spec: spec, finished: true, done: make(chan struct{})}
		t.res = poisonResult(spec, msg)
		close(t.done)
		return t, false, false
	}
	if t, ok := c.pending[key]; ok {
		c.coalesced.Add(1)
		return t, false, false
	}
	t = &clusterTask{key: key, spec: spec, done: make(chan struct{})}
	c.pending[key] = t
	if len(c.workers) == 0 {
		t.claimed = true
		c.localRuns.Add(1)
		return t, true, true
	}
	c.routeLocked(t)
	return t, true, false
}

// claimOrphan expires dead workers and, if that (or an earlier
// expiry) left t orphaned and unclaimed, hands it to the caller for
// local execution. Waiters call this periodically so a fleet that
// died entirely cannot strand them.
func (c *cluster) claimOrphan(t *clusterTask, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if t.finished || t.claimed || t.worker != "" {
		return false
	}
	t.claimed = true
	for i, o := range c.orphans {
		if o == t {
			c.orphans = append(c.orphans[:i], c.orphans[i+1:]...)
			break
		}
	}
	c.localRuns.Add(1)
	return true
}

// routeLocked assigns t to the live worker owning its key shard, or
// parks it with the orphans when the fleet is empty. Sharding is by
// the key's leading digest byte over the sorted worker ids, so
// routing is stable while the fleet is, and every node computes the
// same assignment from the same fleet view. caller holds mu.
func (c *cluster) routeLocked(t *clusterTask) {
	if t.finished || t.claimed {
		return
	}
	if len(c.workers) == 0 {
		t.worker = ""
		c.orphans = append(c.orphans, t)
		return
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w := c.workers[ids[int(t.key[0])%len(ids)]]
	t.worker = w.id
	w.queue = append(w.queue, t)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// expireLocked drops workers that have gone quiet past the TTL and
// reroutes everything they held. caller holds mu.
func (c *cluster) expireLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.ttl {
			delete(c.workers, id)
			c.dropWorkerLocked(w, fmt.Sprintf("worker %s expired after TTL", id), true)
		}
	}
}

// dropWorkerLocked reroutes a removed worker's queued and assigned
// tasks. The caller has already removed it from the fleet map, so
// rerouting lands elsewhere (or on the orphan list). Queued tasks were
// never attempted and always reroute free; assigned (pulled) tasks are
// charged a retry when penalizeAssigned is set — an expiry or lost
// incarnation means the attempt failed — but not on a graceful drain,
// where the worker handed the task back untouched. caller holds mu.
func (c *cluster) dropWorkerLocked(w *clusterWorker, reason string, penalizeAssigned bool) {
	queued := w.queue
	assigned := make([]*clusterTask, 0, len(w.assigned))
	for _, t := range w.assigned {
		assigned = append(assigned, t)
	}
	w.queue = nil
	w.assigned = make(map[harness.Key]*clusterTask)
	for _, t := range queued {
		if t.finished || t.claimed {
			continue
		}
		t.worker = ""
		t.noteLocked(reason + " (task queued, rerouted)")
		c.requeued.Add(1)
		c.routeLocked(t)
	}
	for _, t := range assigned {
		if t.finished || t.claimed {
			continue
		}
		t.worker = ""
		if penalizeAssigned {
			c.retryLocked(t, reason)
			continue
		}
		t.noteLocked(reason + " (task rerouted, no penalty)")
		c.requeued.Add(1)
		c.routeLocked(t)
	}
}

// retryLocked charges one failed attempt against t's budget: within
// budget the task parks for an exponential, key-jittered backoff and
// then reroutes; past it the task is poisoned. caller holds mu.
func (c *cluster) retryLocked(t *clusterTask, reason string) {
	t.retries++
	t.noteLocked(fmt.Sprintf("attempt %d failed: %s", t.retries, reason))
	c.retries.Add(1)
	if t.retries > c.maxRetries {
		c.poisonLocked(t)
		return
	}
	c.requeued.Add(1)
	t.parked = true
	delay := retryDelay(c.retryBase, t.retries, t.key)
	time.AfterFunc(delay, func() { c.unpark(t) })
}

// unpark ends a task's backoff and routes it onto the current fleet.
func (c *cluster) unpark(t *clusterTask) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.finished || t.claimed || !t.parked {
		return
	}
	t.parked = false
	c.routeLocked(t)
}

// retryDelay is the backoff before retry n (1-based): base<<(n-1)
// capped at maxRetryDelay, with a deterministic ±25% jitter drawn from
// the task key so identical retry storms across a fleet of specs
// de-synchronize the same way on every run.
func retryDelay(base time.Duration, retry int, key harness.Key) time.Duration {
	d := base
	for i := 1; i < retry && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	jitter := d / 4 * time.Duration(int(key[1])-128) / 128
	d += jitter
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// poisonLocked quarantines a task that exhausted its retry budget: it
// finishes with a failed result carrying the attempt history, future
// submissions of its key fail fast, and the quarantine is persisted
// through the journal when one is attached. caller holds mu.
func (c *cluster) poisonLocked(t *clusterTask) {
	msg := poisonMessage(t.key, t.retries, t.history)
	c.poisoned[t.key] = msg
	c.poisonedTotal.Add(1)
	c.finishLocked(t, poisonResult(t.spec, msg), nil)
	if c.journal == nil {
		return
	}
	rec := journal.PoisonRecord{Key: t.key.String(), Attempts: append([]string(nil), t.history...)}
	if wire, err := t.spec.Wire(); err == nil {
		rec.Spec = &wire
	}
	jl := c.journal
	// Persist off the lock; losing the record on crash only means the
	// budget is re-burned once after restart.
	//sgxlint:detached one-shot journal append; best-effort by design, the record is redundant with the in-memory quarantine
	go func() {
		if err := jl.Poison(rec); err != nil {
			log.Printf("serve: persisting poison record for %s: %v", rec.Key, err)
		}
	}()
}

// poisonResult is the failed result a poisoned task finishes with. It
// travels as a spec failure (Result.Err), not an engine error, so a
// sweep carries it alongside healthy rows and nothing caches it.
func poisonResult(spec harness.Spec, msg string) *harness.Result {
	res := &harness.Result{Mode: spec.Mode, Err: errors.New(msg)}
	res.Name = spec.WorkloadName()
	return res
}

// poll long-polls for up to max tasks routed to worker id, blocking
// until work arrives, wait elapses, or ctx ends. It reports
// errUnknownWorker when id is not registered (expired, or the
// coordinator restarted) so the worker re-registers.
func (c *cluster) poll(ctx context.Context, id string, max int, wait time.Duration) ([]*clusterTask, error) {
	if max <= 0 {
		max = 1
	}
	if wait < 0 {
		wait = 0
	}
	if wait > maxPollWait {
		wait = maxPollWait
	}
	// Dwelling longer than the TTL would expire an idle worker inside
	// its own long-poll; returning by ttl/2 keeps lastSeen fresh.
	if wait > c.ttl/2 {
		wait = c.ttl / 2
	}
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		c.mu.Lock()
		c.expireLocked(now)
		w, ok := c.workers[id]
		if !ok {
			c.mu.Unlock()
			return nil, errUnknownWorker
		}
		w.lastSeen = now
		n := min(max, len(w.queue))
		batch := w.queue[:n:n]
		w.queue = w.queue[n:]
		for _, t := range batch {
			w.assigned[t.key] = t
		}
		wake := w.wake
		c.mu.Unlock()
		if len(batch) > 0 {
			c.dispatched.Add(uint64(len(batch)))
			return batch, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// complete finishes the open task for key with a worker-computed
// result, reporting whether the result was accepted. Acceptance
// requires that the posting worker is live, currently owns the task,
// actually pulled it, and that the result identifies as the task's
// spec — the results endpoint is unauthenticated, so anything a
// worker posts is validated against the coordinator's own record of
// what it handed out before it can reach the shared cache and store.
// Unknown, finished, locally claimed and reassigned keys count as
// stale; a never-pulled key or a result naming the wrong
// workload/mode counts as rejected. Results are content-addressed, so
// dropping a duplicate loses nothing.
func (c *cluster) complete(workerID string, key harness.Key, res *harness.Result, now time.Time) bool {
	c.mu.Lock()
	w, live := c.workers[workerID]
	if live {
		w.lastSeen = now
	}
	t, open := c.pending[key]
	if !open || t.finished || t.claimed || !live || t.worker != workerID {
		if live {
			delete(w.assigned, key)
		}
		c.mu.Unlock()
		c.stale.Add(1)
		return false
	}
	if _, pulled := w.assigned[key]; !pulled {
		// Routed but never pulled: the task is still queued and will
		// execute normally; this post cannot be its result.
		c.mu.Unlock()
		c.rejected.Add(1)
		return false
	}
	if !resultMatchesSpec(res, t.spec) {
		// The owning worker posted a result that cannot be this
		// task's. Fail the task loudly rather than leave it assigned
		// forever (the worker keeps polling, so it never expires) or
		// reroute it back into the same buggy worker's shard.
		c.finishLocked(t, nil, fmt.Errorf("serve: worker %s posted a result inconsistent with the spec for key %s", workerID, key))
		c.mu.Unlock()
		c.rejected.Add(1)
		return false
	}
	c.finishLocked(t, res, nil)
	c.mu.Unlock()
	c.completed.Add(1)
	return true
}

// resultMatchesSpec checks that a posted result plausibly came from
// executing spec: the registry name (workload or scenario) and mode
// it identifies as must be the spec's own. The spec key itself cannot
// be recomputed from a result, so this is a consistency check, not a
// proof — it catches mislabeled keys from buggy workers and casually
// forged posts.
func resultMatchesSpec(res *harness.Result, spec harness.Spec) bool {
	name := spec.WorkloadName()
	return res != nil && name != "" && res.Name == name && res.Mode == spec.Mode
}

// heartbeat refreshes a worker's lastSeen without pulling work,
// reporting whether the worker is (still) registered. Workers beat
// while executing a batch so specs slower than the TTL do not expire
// them mid-run.
func (c *cluster) heartbeat(id string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	w, ok := c.workers[id]
	if ok {
		w.lastSeen = now
	}
	return ok
}

// fail records a worker-reported execution failure for the open task
// on key, charging its retry budget, and reports whether the failure
// was attributed. Validation mirrors complete: only the live owner of
// a pulled task may fail it.
func (c *cluster) fail(workerID string, key harness.Key, reason string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, live := c.workers[workerID]
	if live {
		w.lastSeen = now
	}
	t, open := c.pending[key]
	if !open || t.finished || t.claimed || !live || t.worker != workerID {
		if live {
			delete(w.assigned, key)
		}
		c.stale.Add(1)
		return false
	}
	if _, pulled := w.assigned[key]; !pulled {
		c.rejected.Add(1)
		return false
	}
	delete(w.assigned, key)
	t.worker = ""
	c.retryLocked(t, fmt.Sprintf("worker %s reported failure: %s", workerID, reason))
	return true
}

// deregister removes a draining worker and reroutes everything it
// held with no retry penalty: the worker finished (and posted) its
// in-flight batch before deregistering, so whatever remains was never
// attempted. Reports whether the worker was registered.
func (c *cluster) deregister(id string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	delete(c.workers, id)
	c.drained.Add(1)
	c.dropWorkerLocked(w, fmt.Sprintf("worker %s drained", id), false)
	return true
}

// finish settles a locally executed (claimed) task.
func (c *cluster) finish(t *clusterTask, res *harness.Result, err error) {
	c.mu.Lock()
	if t.finished {
		c.mu.Unlock()
		return
	}
	c.finishLocked(t, res, err)
	c.mu.Unlock()
}

// finishLocked retires the task and wakes every waiter.
// caller holds mu.
func (c *cluster) finishLocked(t *clusterTask, res *harness.Result, err error) {
	t.finished = true
	delete(c.pending, t.key)
	if t.worker != "" {
		if w, ok := c.workers[t.worker]; ok {
			delete(w.assigned, t.key)
			for i, q := range w.queue {
				if q == t {
					w.queue = append(w.queue[:i], w.queue[i+1:]...)
					break
				}
			}
		}
	}
	t.res, t.err = res, err
	close(t.done)
}

// liveWorkers reports the current fleet size (after expiry).
func (c *cluster) liveWorkers(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	return len(c.workers)
}

// errUnknownWorker tells a polling worker it must re-register.
var errUnknownWorker = fmt.Errorf("serve: unknown worker (register first)")

// claimRecheck is how often a waiter on a dispatched task rechecks
// for fleet death; it bounds how long a task can sit orphaned with no
// worker and no one claiming it.
const claimRecheck = time.Second

// execRemote is the coordinator's executor: it satisfies
// harness.Runner.Exec and backs the /v1/run path, so every entry
// point — run, sweep, figures — draws on the fleet through the same
// coalescing dispatcher. Specs that cannot travel (hooks, no
// canonical encoding) and tasks orphaned by total fleet loss fall
// back to local execution.
func (s *Server) execRemote(spec harness.Spec) (*harness.Result, error) {
	spec = s.runner.Normalize(spec)
	key, err := harness.SpecKey(spec)
	if err != nil || !spec.Hooks.Empty() {
		return s.localRun(spec)
	}
	t, _, runLocal := s.cluster.submit(key, spec, time.Now())
	if runLocal {
		res, err := s.localRun(spec)
		s.cluster.finish(t, res, err)
		return res, err
	}
	for {
		timer := time.NewTimer(claimRecheck)
		select {
		case <-t.done:
			timer.Stop()
			return t.res, t.err
		case <-timer.C:
			if s.cluster.claimOrphan(t, time.Now()) {
				res, err := s.localRun(spec)
				s.cluster.finish(t, res, err)
				return res, err
			}
		}
	}
}

// --- cluster HTTP wire ---

// registerRequest is the POST /v1/cluster/register body.
type registerRequest struct {
	Worker string `json:"worker"`
}

// registerResponse acknowledges a registration and advertises the
// coordinator's worker TTL so the worker can pace its heartbeats.
type registerResponse struct {
	Workers int   `json:"workers"`
	TTLMS   int64 `json:"ttl_ms"`
}

// heartbeatRequest is the POST /v1/cluster/heartbeat body.
type heartbeatRequest struct {
	Worker string `json:"worker"`
}

// heartbeatResponse acknowledges a keep-alive.
type heartbeatResponse struct {
	OK bool `json:"ok"`
}

// pollRequest is the POST /v1/cluster/poll body.
type pollRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
	WaitMS int64  `json:"wait_ms"`
}

// taskAssignment is one dispatched spec in a poll response.
type taskAssignment struct {
	Key  string           `json:"key"`
	Spec harness.SpecWire `json:"spec"`
}

// pollResponse carries a batch of assignments (possibly empty).
type pollResponse struct {
	Specs []taskAssignment `json:"specs"`
}

// resultLine is one NDJSON line of a POST /v1/cluster/results body.
// Failed, when non-empty, reports that the worker could not execute
// the spec at all (decode failure, harness panic) — Result is absent
// and the coordinator charges the task's retry budget instead of
// leaving it assigned forever.
type resultLine struct {
	Key    string             `json:"key"`
	Result harness.ResultWire `json:"result"`
	Failed string             `json:"failed,omitempty"`
}

// deregisterRequest is the POST /v1/cluster/deregister body.
type deregisterRequest struct {
	Worker string `json:"worker"`
}

// deregisterResponse acknowledges a graceful drain.
type deregisterResponse struct {
	OK bool `json:"ok"`
}

// resultsResponse acknowledges a results stream.
type resultsResponse struct {
	Accepted int `json:"accepted"`
}

// handleClusterRegister serves POST /v1/cluster/register.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(w, r, maxRunBody, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty worker id"))
		return
	}
	n := s.cluster.register(req.Worker, time.Now())
	writeJSON(w, http.StatusOK, registerResponse{Workers: n, TTLMS: s.cluster.ttl.Milliseconds()})
}

// handleClusterHeartbeat serves POST /v1/cluster/heartbeat: a
// keep-alive workers send while a batch executes, since neither
// polling nor the results stream touches the coordinator during a
// long simulation. Unknown workers get 404 so they re-register.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, maxRunBody, &req) {
		return
	}
	if !s.cluster.heartbeat(req.Worker, time.Now()) {
		writeError(w, http.StatusNotFound, errUnknownWorker)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{OK: true})
}

// handleClusterPoll serves POST /v1/cluster/poll: a long-poll that
// returns up to max routed specs for the worker.
func (s *Server) handleClusterPoll(w http.ResponseWriter, r *http.Request) {
	var req pollRequest
	if !decodeBody(w, r, maxRunBody, &req) {
		return
	}
	tasks, err := s.cluster.poll(r.Context(), req.Worker, req.Max, time.Duration(req.WaitMS)*time.Millisecond)
	switch {
	case err == errUnknownWorker:
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		// Worker disconnected mid-poll; nothing to write.
		return
	}
	resp := pollResponse{Specs: make([]taskAssignment, 0, len(tasks))}
	for _, t := range tasks {
		wire, werr := t.spec.Wire()
		if werr != nil {
			// Unreachable: submit rejects unencodable specs. Requeue
			// defensively rather than lose the task.
			s.cluster.finish(t, nil, werr)
			continue
		}
		resp.Specs = append(resp.Specs, taskAssignment{Key: t.key.String(), Spec: wire})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterResults serves POST /v1/cluster/results: an NDJSON
// stream of completed results, accepted incrementally so a sweep
// waiting on an early key unblocks before the worker's whole batch
// lands. The stream as a whole is unbounded — it is consumed line by
// line, and a batch of full-fidelity results (timelines, op stats)
// can legitimately run far past any fixed body cap — but each line is
// capped at maxResultLine. A result reaches the shared cache (and
// store) only after the cluster validates it against the task the
// posting worker actually holds; stale and rejected lines are dropped
// without being counted as accepted.
func (s *Server) handleClusterResults(w http.ResponseWriter, r *http.Request) {
	workerID := r.URL.Query().Get("worker")
	dec := newResultLineDecoder(r.Body)
	accepted := 0
	for {
		key, res, failed, err := dec.next()
		if err == errDecodeDone {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if failed != "" {
			// The worker could not execute the spec; charge the retry
			// budget (reroute or poison) rather than count it accepted.
			s.cluster.fail(workerID, key, failed, time.Now())
			continue
		}
		if !s.cluster.complete(workerID, key, res, time.Now()) {
			continue
		}
		if res.Err == nil {
			s.results.Add(key, res)
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, resultsResponse{Accepted: accepted})
}

// handleClusterDeregister serves POST /v1/cluster/deregister: a
// draining worker's goodbye after it has finished and posted its final
// batch. Its remaining queued work reroutes immediately — and with no
// retry penalty — instead of waiting out the TTL. Unknown workers get
// 404 (already expired, or the coordinator restarted); drain treats
// that as success.
func (s *Server) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	var req deregisterRequest
	if !decodeBody(w, r, maxRunBody, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty worker id"))
		return
	}
	if !s.cluster.deregister(req.Worker, time.Now()) {
		writeError(w, http.StatusNotFound, errUnknownWorker)
		return
	}
	writeJSON(w, http.StatusOK, deregisterResponse{OK: true})
}

// errDecodeDone is resultLineDecoder's clean end-of-stream marker.
var errDecodeDone = errors.New("serve: result stream complete")

// maxResultLine caps one line of a results stream. The cap is per
// line, not per stream: memory is bounded by the largest single
// result, while a long batch of large results streams through
// unimpeded.
const maxResultLine = 8 << 20

// resultLineDecoder reads one resultLine per call from an NDJSON
// stream, rehydrating the canonical wire form into a harness.Result.
type resultLineDecoder struct {
	sc *bufio.Scanner
}

func newResultLineDecoder(r io.Reader) *resultLineDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxResultLine)
	return &resultLineDecoder{sc: sc}
}

// next returns the stream's next key/result pair (or key/failure
// pair, when the worker reported it could not execute the spec),
// errDecodeDone at clean end of stream, or the first malformed line's
// error.
func (d *resultLineDecoder) next() (harness.Key, *harness.Result, string, error) {
	for d.sc.Scan() {
		raw := bytes.TrimSpace(d.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var line resultLine
		if err := dec.Decode(&line); err != nil {
			return harness.Key{}, nil, "", fmt.Errorf("serve: bad result line: %w", err)
		}
		key, err := harness.ParseKey(line.Key)
		if err != nil {
			return harness.Key{}, nil, "", err
		}
		if line.Failed != "" {
			return key, nil, line.Failed, nil
		}
		res, err := line.Result.Result()
		if err != nil {
			return harness.Key{}, nil, "", err
		}
		return key, res, "", nil
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("serve: result line exceeds the %d-byte limit", maxResultLine)
		}
		return harness.Key{}, nil, "", fmt.Errorf("serve: bad result line: %w", err)
	}
	return harness.Key{}, nil, "", errDecodeDone
}
