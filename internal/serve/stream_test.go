package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// dyingWriter is a ResponseWriter whose connection breaks after a
// fixed number of successful writes — the server-side view of a
// client that disconnected mid-stream.
type dyingWriter struct {
	header   http.Header
	okWrites int // writes that succeed before the pipe breaks
	writes   int // total Write calls observed
}

func (w *dyingWriter) Header() http.Header { return w.header }
func (w *dyingWriter) WriteHeader(int)     {}
func (w *dyingWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errors.New("write tcp: broken pipe")
	}
	return len(b), nil
}

// TestSweepStopsWritingToDeadClient (regression): once a stream write
// has failed, handleSweep must stop encoding and flushing — the old
// emit ignored Encode errors and kept hammering the dead connection
// with every remaining progress, result and done line.
func TestSweepStopsWritingToDeadClient(t *testing.T) {
	s := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	var specs []string
	for seed := 1; seed <= 4; seed++ {
		specs = append(specs, fmt.Sprintf(`{"workload":"Empty","mode":"Vanilla","size":"Low","seed":%d}`, seed))
	}
	body := "[" + strings.Join(specs, ",") + "]"

	w := &dyingWriter{header: http.Header{}, okWrites: 1}
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	s.handleSweep(w, req)

	// One successful write, then the one that discovered the broken
	// pipe; a handler still emitting after that would show up as the
	// remaining ~8 progress/result/done lines.
	if w.writes > w.okWrites+1 {
		t.Fatalf("handler wrote %d times to a stream dead after %d writes", w.writes, w.okWrites)
	}
}

// erroringWriter is a plain io.Writer (the worker's results pipe, not
// a ResponseWriter) that breaks after a fixed number of writes.
type erroringWriter struct {
	ok     int // writes that succeed before the pipe breaks
	writes int // total Write calls observed
}

func (w *erroringWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.ok {
		return 0, errors.New("write tcp: broken pipe")
	}
	return len(b), nil
}

// TestNDJSONPipeStopsAfterFirstError (regression): the worker's batch
// results used to go through a bare json.Encoder that ignored every
// Encode error, serializing the whole batch into a pipe whose post had
// already died. newNDJSONPipe must stop touching the writer after the
// first failure.
func TestNDJSONPipeStopsAfterFirstError(t *testing.T) {
	w := &erroringWriter{ok: 2}
	st := newNDJSONPipe(w)
	emitted := 0
	for i := 0; i < 10; i++ {
		if st.emit(i) {
			emitted++
		}
	}
	if emitted != 2 {
		t.Errorf("emit reported %d successes, want 2", emitted)
	}
	// Two good writes plus the one that discovered the break; the
	// remaining seven emits must never reach the writer.
	if w.writes != 3 {
		t.Errorf("writer saw %d writes, want 3", w.writes)
	}
	if st.alive() {
		t.Error("stream still alive after a failed write")
	}
}

// TestSweepDisconnectDetachesJob: a client that disconnects mid-sweep
// no longer cancels the batch — the job runs detached to completion,
// and a reattach via GET /v1/jobs/{id} streams every result exactly
// once, ending with the terminal done line. (This inverts the old
// contract, where the request context was the batch's lifetime.)
func TestSweepDisconnectDetachesJob(t *testing.T) {
	s := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the first event lands
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`[{"workload":"Empty","mode":"Vanilla","size":"Low"}]`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleSweep(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	sc := bufio.NewScanner(rec.Body)
	if !sc.Scan() {
		t.Fatal("aborted stream carried no job header")
	}
	var header sweepEvent
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatal(err)
	}
	if header.Event != "job" || header.JobID == "" {
		t.Fatalf("first line = %+v, want a job header naming the job ID", header)
	}

	jb, ok := s.lookupJob(header.JobID)
	if !ok {
		t.Fatalf("job %s not registered for reattach", header.JobID)
	}
	jb.waitDone(context.Background())
	if term := jb.terminalEvent(); term.Event != "done" || !term.OK {
		t.Fatalf("terminal = %+v, want done ok:true (disconnect must not cancel the batch)", term)
	}

	// Reattach: every result exactly once, then the terminal line.
	req2 := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+header.JobID, nil)
	req2.SetPathValue("id", header.JobID)
	rec2 := httptest.NewRecorder()
	s.handleJob(rec2, req2)
	var events []sweepEvent
	sc = bufio.NewScanner(rec2.Body)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	results := 0
	for _, ev := range events {
		if ev.Event == "result" {
			results++
			if ev.Result == nil || ev.Result.Error != "" {
				t.Fatalf("reattached result = %+v, want a clean result", ev)
			}
		}
	}
	if results != 1 {
		t.Fatalf("reattach streamed %d results, want exactly 1", results)
	}
	if last := events[len(events)-1]; last.Event != "done" || !last.OK {
		t.Fatalf("reattach terminal = %+v, want done ok:true", last)
	}
}

// TestOversizedBody413 (regression): bodies over the MaxBytesReader
// caps must surface as 413 naming the limit, not a generic 400.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		path  string
		limit int
	}{
		{"/v1/run", maxRunBody},
		{"/v1/sweep", maxSweepBody},
	}
	for _, c := range cases {
		body := bytes.Repeat([]byte(" "), c.limit+1)
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("%s: decoding error body: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", c.path, resp.StatusCode)
		}
		if !strings.Contains(payload["error"], fmt.Sprint(c.limit)) {
			t.Errorf("%s: error %q does not name the %d-byte limit", c.path, payload["error"], c.limit)
		}
	}
}

// TestSweepDoneOK: a completed batch's terminal line carries ok:true,
// the marker distinguishing it from a truncated stream.
func TestSweepDoneOK(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`[{"workload":"Empty","mode":"Vanilla","size":"Low"}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last sweepEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if last.Event != "done" || !last.OK || last.Error != "" {
		t.Fatalf("terminal event = %+v, want done with ok:true", last)
	}
}
