package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sgxgauge/internal/harness"
)

// cacheShards is the shard count of the daemon cache. Sharding by key
// byte keeps lock contention bounded when many handlers hit the cache
// at once; 16 shards comfortably covers the worker-pool sizes the
// daemon runs with.
const cacheShards = 16

// DefaultCacheEntries bounds the cache when the configuration leaves
// the size zero. A Result is small (a few KiB unless a timeline was
// requested), so thousands of entries are cheap.
const DefaultCacheEntries = 4096

// Cache is the daemon's result cache: a sharded, size-bounded LRU
// implementing harness.ResultCache, so it plugs straight into a
// Runner. Each shard holds its own lock; hit/miss/eviction counters
// feed the /metrics endpoint.
type Cache struct {
	shards    [cacheShards]cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	max int
	// entries indexes the recency list by key. // guarded by mu
	entries map[harness.Key]*list.Element
	// order is the recency list, most recent at the front. // guarded by mu
	order *list.List
}

type cacheEntry struct {
	key harness.Key
	res *harness.Result
}

// NewCache returns a cache bounded to roughly maxEntries results
// (rounded up to a multiple of the shard count; <= 0 selects
// DefaultCacheEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	per := (maxEntries + cacheShards - 1) / cacheShards
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			max:     per,
			entries: make(map[harness.Key]*list.Element),
			order:   list.New(),
		}
	}
	return c
}

// shard selects the shard for key by its leading digest byte; SHA-256
// output is uniform, so shards fill evenly.
func (c *Cache) shard(k harness.Key) *cacheShard {
	return &c.shards[int(k[0])%cacheShards]
}

// Get returns the cached result for key, marking it most recently
// used.
func (c *Cache) Get(k harness.Key) (*harness.Result, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	var res *harness.Result
	if ok {
		s.order.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return res, true
}

// Add stores res under key unless the key is already present, evicting
// the least recently used entries of the shard when it overflows. It
// returns the entry the cache now holds — the earlier one on a
// duplicate insert — so every reader of a key observes one canonical
// pointer.
func (c *Cache) Add(k harness.Key, res *harness.Result) *harness.Result {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
		s.mu.Unlock()
		return res
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, res: res})
	evicted := 0
	for len(s.entries) > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
	return res
}

// Len reports the number of cached results across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the lifetime hit, miss and eviction counts.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
