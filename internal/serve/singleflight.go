package serve

import (
	"sync"

	"sgxgauge/internal/harness"
)

// flight coalesces concurrent requests for the same spec key: the
// first request becomes the leader and actually executes the run; the
// rest wait on the leader's call. The leader's goroutine is owned by
// the server (it keeps running after a follower's — or even the
// leader's own — HTTP request is cancelled), which is why flight only
// tracks membership and leaves execution to the caller.
type flight struct {
	mu sync.Mutex
	// calls holds the one in-flight call per key. // guarded by mu
	calls map[harness.Key]*flightCall
}

// flightCall is one coalesced execution. res and err are written by
// the leader before done is closed and read by waiters only after,
// so the channel is the only synchronization they need.
type flightCall struct {
	done chan struct{}
	res  *harness.Result
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[harness.Key]*flightCall)}
}

// join returns the in-flight call for key, registering a fresh one —
// and leadership over it — when none exists. The leader must
// eventually settle the call with complete.
func (f *flight) join(key harness.Key) (c *flightCall, leader bool) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()
	return c, true
}

// complete records the leader's outcome, retires the key so the next
// request starts a fresh run, and wakes every waiter.
func (f *flight) complete(key harness.Key, c *flightCall, res *harness.Result, err error) {
	c.res, c.err = res, err
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
}
