package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// workerPollWait is how long each worker poll dwells at the
// coordinator waiting for work.
const workerPollWait = 10 * time.Second

// workerRetryDelay paces reconnection attempts after a failed
// register, poll or results post.
const workerRetryDelay = time.Second

// DefaultDrain is the default graceful-shutdown budget: how long
// in-flight work (HTTP requests on a server, the executing batch on a
// worker) may finish after SIGINT/SIGTERM.
const DefaultDrain = 30 * time.Second

// deregisterTimeout bounds the goodbye post a draining worker sends
// after its final batch.
const deregisterTimeout = 2 * time.Second

// Worker turns a daemon into a sweep-cluster execution node: it
// registers with a coordinator, long-polls for spec batches routed to
// its key shard, executes them through the daemon's own Runner — so a
// warm local cache or store still short-circuits simulation — and
// streams each result back the moment it completes.
//
// The loop is crash-only: any transport failure (coordinator down,
// poll rejected, results post broken) backs off and starts over from
// registration. Results lost in a failed post are not retried as
// results — the worker re-registers, which drops its previous
// incarnation at the coordinator and immediately reroutes every task
// it still held; results are content-addressed, so re-execution
// converges on identical bytes. While a batch executes, a background
// heartbeat keeps the registration alive so a single spec that
// simulates longer than the coordinator's TTL does not get the whole
// batch rerouted mid-run.
type Worker struct {
	server      *Server
	coordinator string // base URL, e.g. http://127.0.0.1:8643
	id          string
	jobs        int
	client      *http.Client
	// heartbeatEvery paces keep-alives during batch execution; set
	// from the coordinator's advertised TTL at registration.
	heartbeatEvery time.Duration
	// Drain bounds how long an in-flight batch may keep executing —
	// and its results post stay open — after Run's context is
	// cancelled, so a SIGTERM'd worker lands finished work at the
	// coordinator instead of forcing re-simulation elsewhere.
	Drain time.Duration

	executed  atomic.Uint64 // specs executed for the coordinator
	postFails atomic.Uint64 // result posts that died mid-stream
}

// NewWorker returns a worker that executes on s's runner for the
// coordinator at the given base URL. id must be unique per worker
// process (the daemon uses its listen address).
func NewWorker(s *Server, coordinator, id string) *Worker {
	jobs := cap(s.slots)
	return &Worker{
		server:         s,
		coordinator:    coordinator,
		id:             id,
		jobs:           jobs,
		client:         &http.Client{},
		heartbeatEvery: DefaultWorkerTTL / 3,
		Drain:          DefaultDrain,
	}
}

// Run drives the register/poll/execute loop until ctx is cancelled.
// It always returns nil on cancellation; transient failures are
// logged and retried, never fatal.
func (w *Worker) Run(ctx context.Context) error {
	registered := false
loop:
	for ctx.Err() == nil {
		if !registered {
			if err := w.register(ctx); err != nil {
				if ctx.Err() != nil {
					break
				}
				log.Printf("sgxgauged: worker %s: register: %v (retrying)", w.id, err)
				sleepCtx(ctx, workerRetryDelay)
				continue
			}
			registered = true
			log.Printf("sgxgauged: worker %s: registered with %s", w.id, w.coordinator)
		}
		batch, err := w.poll(ctx)
		switch {
		case ctx.Err() != nil:
			// Cancelled mid-poll (the idle worker's common drain path);
			// fall through to the goodbye below.
			break loop
		case err == errUnknownWorker:
			// Coordinator restarted or expired us; re-register.
			registered = false
			continue
		case err != nil:
			log.Printf("sgxgauged: worker %s: poll: %v (retrying)", w.id, err)
			registered = false
			sleepCtx(ctx, workerRetryDelay)
			continue
		}
		if len(batch) == 0 {
			continue
		}
		if err := w.executeBatch(ctx, batch); err != nil {
			w.postFails.Add(1)
			// Re-register rather than keep polling: polling would
			// refresh lastSeen and keep the dropped batch assigned
			// forever, while re-registration drops this incarnation at
			// the coordinator and reroutes every task it held.
			registered = false
			log.Printf("sgxgauged: worker %s: results post: %v (re-registering so the coordinator reroutes)", w.id, err)
			sleepCtx(ctx, workerRetryDelay)
		}
	}
	// Graceful drain: the batch (if any) has finished and posted under
	// the drain budget above; tell the coordinator goodbye so our
	// queued work reroutes immediately instead of waiting out the TTL.
	w.deregister()
	return nil
}

// deregister posts the drain goodbye on a fresh short-lived context
// (Run's own context is already cancelled by the time this runs).
// Best-effort: a coordinator that already expired us answers 404,
// which is the same outcome.
func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), deregisterTimeout)
	defer cancel()
	var resp deregisterResponse
	err := w.post(ctx, "/v1/cluster/deregister", deregisterRequest{Worker: w.id}, &resp)
	switch {
	case err == nil, err == errUnknownWorker:
		log.Printf("sgxgauged: worker %s: deregistered", w.id)
	default:
		log.Printf("sgxgauged: worker %s: deregister: %v (coordinator will expire us by TTL)", w.id, err)
	}
}

// register announces the worker to the coordinator and adopts its
// advertised TTL as the heartbeat cadence (a third of the TTL, so two
// beats can be lost before expiry).
func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	if err := w.post(ctx, "/v1/cluster/register", registerRequest{Worker: w.id}, &resp); err != nil {
		return err
	}
	if resp.TTLMS > 0 {
		every := time.Duration(resp.TTLMS) * time.Millisecond / 3
		if every < 100*time.Millisecond {
			every = 100 * time.Millisecond
		}
		w.heartbeatEvery = every
	}
	return nil
}

// heartbeatLoop posts keep-alives until ctx is cancelled. Failures are
// ignored: an expired registration surfaces on the next poll as
// errUnknownWorker, and a dead transport surfaces on the results post.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.heartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp heartbeatResponse
			//sgxlint:ignore droppederr keep-alives are best-effort; an expired registration surfaces on the next poll, a dead transport on the results post
			w.post(ctx, "/v1/cluster/heartbeat", heartbeatRequest{Worker: w.id}, &resp)
		}
	}
}

// poll long-polls the coordinator for the next batch of assignments.
func (w *Worker) poll(ctx context.Context) ([]taskAssignment, error) {
	var resp pollResponse
	req := pollRequest{Worker: w.id, Max: w.jobs, WaitMS: workerPollWait.Milliseconds()}
	if err := w.post(ctx, "/v1/cluster/poll", req, &resp); err != nil {
		return nil, err
	}
	return resp.Specs, nil
}

// executeBatch runs the batch's specs concurrently (up to the
// worker-pool size) and streams each result line back over one
// chunked NDJSON POST as it completes, so the coordinator can settle
// early keys while later ones are still simulating.
func (w *Worker) executeBatch(ctx context.Context, batch []taskAssignment) error {
	// Drain semantics: once ctx is cancelled (SIGTERM) the in-flight
	// batch keeps executing and the results post stays open for up to
	// w.Drain, so finished work lands at the coordinator instead of
	// being re-simulated elsewhere. batchCtx outlives ctx for exactly
	// that window; past it the post is torn down and the coordinator
	// reroutes whatever never arrived.
	batchCtx, cancelBatch := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelBatch()
	batchDone := make(chan struct{})
	defer close(batchDone)
	//sgxlint:detached drain watcher exits on the deferred close(batchDone) above; channel-joined, not WaitGroup-joined
	go func() {
		select {
		case <-batchDone:
		case <-ctx.Done():
			t := time.NewTimer(w.Drain)
			defer t.Stop()
			select {
			case <-batchDone:
			case <-t.C:
				cancelBatch()
			}
		}
	}()

	// Keep the registration alive while the batch simulates: the
	// results stream only touches the coordinator as lines land, so a
	// single spec slower than the TTL would otherwise expire the
	// worker and reroute the whole batch. Beats follow batchCtx so a
	// draining worker stays registered until its final post lands.
	hbCtx, stopHeartbeat := context.WithCancel(batchCtx)
	defer stopHeartbeat()
	//sgxlint:detached heartbeat loop returns when the deferred stopHeartbeat cancels hbCtx; nothing to wait on
	go w.heartbeatLoop(hbCtx)

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(batchCtx, http.MethodPost,
		w.coordinator+"/v1/cluster/results?worker="+w.id, pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	postErr := make(chan error, 1)
	//sgxlint:detached post goroutine delivers exactly one value on the buffered postErr channel, received before executeBatch returns
	go func() {
		resp, err := w.client.Do(req)
		if err != nil {
			// Unblock any encoder still writing into the pipe.
			pr.CloseWithError(err)
			postErr <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			postErr <- fmt.Errorf("serve: results post: coordinator returned %s", resp.Status)
			return
		}
		postErr <- nil
	}()

	// The stream serializes result lines onto the pipe and remembers
	// the first write error: once the post dies, later results skip
	// serialization entirely instead of encoding into a broken pipe
	// line after line. The post goroutine above reports the transport
	// error and the coordinator reroutes whatever never arrived.
	stream := newNDJSONPipe(pw)
	sem := make(chan struct{}, w.jobs)
	var wg sync.WaitGroup
	for _, t := range batch {
		wg.Add(1)
		sem <- struct{}{}
		go func(t taskAssignment) {
			defer wg.Done()
			defer func() { <-sem }()
			line := w.executeOne(t)
			if line.Failed != "" {
				log.Printf("sgxgauged: worker %s: spec %s: %s (reporting failure; coordinator charges its retry budget)", w.id, t.Key, line.Failed)
			}
			stream.emit(line)
		}(t)
	}
	wg.Wait()
	pw.Close()
	return <-postErr
}

// executeOne runs one assignment through the local runner and shapes
// the result for the wire. A spec's own failure travels inside the
// result line; trouble executing at all (an undecodable spec, an
// engine error) travels as a failed line, so the coordinator charges
// the task's retry budget instead of leaving it assigned to us
// forever.
func (w *Worker) executeOne(t taskAssignment) resultLine {
	spec, err := t.Spec.Spec()
	if err != nil {
		return resultLine{Key: t.Key, Failed: fmt.Sprintf("bad assignment spec: %v", err)}
	}
	// Run, not localRun: the worker's runner owns caching here, so a
	// result already in its memory cache or on-disk store is served
	// without booting a machine.
	res, err := w.server.runner.Run(spec)
	if err != nil || res == nil {
		if err == nil {
			err = errors.New("runner returned no result")
		}
		return resultLine{Key: t.Key, Failed: err.Error()}
	}
	w.executed.Add(1)
	return resultLine{Key: t.Key, Result: res.Wire()}
}

// post sends one JSON request and decodes the JSON response into out.
// An errUnknownWorker response is returned as that sentinel so the
// loop re-registers.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return errUnknownWorker
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("serve: %s: coordinator returned %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
