package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// ndjsonStream writes NDJSON event lines to a streaming response,
// remembering the first write error. HTTP response writes to a
// disconnected client fail without aborting the handler, so a naive
// streamer keeps encoding and flushing into a dead connection for the
// rest of the batch; tracking the first error lets every later emit
// short-circuit instead.
//
// The zero value is not usable; create one with newNDJSONStream,
// which also commits the 200 header (everything after that must be an
// event line, not a status change).
type ndjsonStream struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
	err     error // first write error; the stream is dead once set
}

func newNDJSONStream(w http.ResponseWriter) *ndjsonStream {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	return &ndjsonStream{enc: json.NewEncoder(w), flusher: flusher}
}

// newNDJSONPipe returns a stream over a plain io.Writer — the worker's
// results pipe — with no header commit and no flusher. Same
// first-error discipline: once a write fails, every later emit
// short-circuits without serializing, so a batch whose results post
// died stops burning CPU on lines nobody will read.
func newNDJSONPipe(w io.Writer) *ndjsonStream {
	return &ndjsonStream{enc: json.NewEncoder(w)}
}

// emit writes one event line and flushes it to the client, reporting
// whether the stream is still alive. Once a write has failed, emit
// stops touching the connection entirely.
func (s *ndjsonStream) emit(v any) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return false
	}
	if err := s.enc.Encode(v); err != nil {
		s.err = err
		return false
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return true
}

// alive reports whether no write has failed yet.
func (s *ndjsonStream) alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err == nil
}
