package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/store"
)

// startCoordinator boots a coordinator daemon on an ephemeral
// listener.
func startCoordinator(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Coordinator = true
	if cfg.EPCPages == 0 {
		cfg.EPCPages = testEPC
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// startWorker boots a worker daemon (its own Server and runner) and
// runs its pull loop against the coordinator until test cleanup.
func startWorker(t *testing.T, coordinatorURL, id string, cfg Config) (*Server, *Worker) {
	t.Helper()
	if cfg.EPCPages == 0 {
		cfg.EPCPages = testEPC
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	ws := New(cfg)
	wk := NewWorker(ws, coordinatorURL, id)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ws, wk
}

// waitForWorkers blocks until the coordinator sees n live workers.
func waitForWorkers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.cluster.liveWorkers(time.Now()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw %d workers", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sweepResultLines posts a sweep and returns its raw "result" event
// lines plus the terminal event.
func sweepResultLines(t *testing.T, baseURL, body string) (lines []string, terminal sweepEvent) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		terminal = ev
		if ev.Event == "result" {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, terminal
}

// sweepBody returns a sweep request of n distinct Empty/Vanilla specs.
func sweepBody(n int) string {
	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"workload":"Empty","mode":"Vanilla","size":"Low","seed":%d}`, i+1)
	}
	return "[" + strings.Join(specs, ",") + "]"
}

// TestClusterSweepTwoWorkers is the end-to-end acceptance test: a
// coordinator with two registered workers serves a sweep entirely
// from the fleet — every spec executes on the worker its key shards
// to, none on the coordinator — and the stream is byte-identical to
// the same sweep on a standalone single-node daemon.
func TestClusterSweepTwoWorkers(t *testing.T) {
	coord, cts := startCoordinator(t, Config{})
	_, wk1 := startWorker(t, cts.URL, "w1", Config{})
	_, wk2 := startWorker(t, cts.URL, "w2", Config{})
	waitForWorkers(t, coord, 2)

	const n = 8
	body := sweepBody(n)
	clusterLines, terminal := sweepResultLines(t, cts.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}
	if len(clusterLines) != n {
		t.Fatalf("got %d result lines, want %d", len(clusterLines), n)
	}

	// The coordinator never simulated; the fleet did all the work,
	// split exactly by key shard over the sorted worker ids.
	if got := coord.cluster.localRuns.Load(); got != 0 {
		t.Fatalf("coordinator ran %d specs locally, want 0", got)
	}
	var specs []harness.Spec
	if err := json.Unmarshal([]byte(body), &specs); err != nil {
		t.Fatal(err)
	}
	wantPerWorker := map[string]uint64{}
	ids := []string{"w1", "w2"}
	sort.Strings(ids)
	for _, spec := range specs {
		key, err := coord.runner.Key(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantPerWorker[ids[int(key[0])%len(ids)]]++
	}
	if got := wk1.executed.Load(); got != wantPerWorker["w1"] {
		t.Errorf("w1 executed %d specs, want %d (its shard)", got, wantPerWorker["w1"])
	}
	if got := wk2.executed.Load(); got != wantPerWorker["w2"] {
		t.Errorf("w2 executed %d specs, want %d (its shard)", got, wantPerWorker["w2"])
	}
	if got := coord.cluster.completed.Load(); got != n {
		t.Errorf("cluster completed %d tasks, want %d", got, n)
	}

	// Byte-identical to a single-node daemon running the same sweep.
	single := New(Config{EPCPages: testEPC, Seed: 7, Workers: 4})
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	singleLines, terminal := sweepResultLines(t, sts.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("single-node terminal event = %+v, want done ok:true", terminal)
	}
	for i := range singleLines {
		if clusterLines[i] != singleLines[i] {
			t.Fatalf("result line %d differs between cluster and single node:\n cluster: %s\n single:  %s",
				i, clusterLines[i], singleLines[i])
		}
	}
}

// TestClusterFigureFromFleet: the figures path draws on the same
// fleet machinery — regenerating a figure through a coordinator runs
// nothing on the coordinator itself.
func TestClusterFigureFromFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration in -short mode")
	}
	coord, cts := startCoordinator(t, Config{})
	startWorker(t, cts.URL, "w1", Config{})
	startWorker(t, cts.URL, "w2", Config{})
	waitForWorkers(t, coord, 2)

	resp, err := http.Get(cts.URL + "/v1/figures/7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure via cluster: status %d, want 200", resp.StatusCode)
	}
	if got := coord.cluster.localRuns.Load(); got != 0 {
		t.Fatalf("figure generation ran %d specs on the coordinator, want 0", got)
	}
}

// TestClusterWorkerStoreWarm: a fresh coordinator dispatching to a
// restarted worker whose persistent store already holds the results
// serves the whole sweep without a single simulation anywhere.
func TestClusterWorkerStoreWarm(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *store.Store {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	const n = 4
	body := sweepBody(n)

	coord1, cts1 := startCoordinator(t, Config{})
	startWorker(t, cts1.URL, "w1", Config{Store: openStore()})
	waitForWorkers(t, coord1, 1)
	firstLines, terminal := sweepResultLines(t, cts1.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}

	// "Restart": a brand-new coordinator and a brand-new worker
	// process sharing only the store directory. The progress hook is
	// installed before the pull loop starts: it fires only for specs
	// that actually simulate.
	coord2, cts2 := startCoordinator(t, Config{})
	ws2 := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2, Store: openStore()})
	var simulated atomic.Int64
	ws2.runner.Progress = func(harness.Progress) { simulated.Add(1) }
	wk2 := NewWorker(ws2, cts2.URL, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk2.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	waitForWorkers(t, coord2, 1)

	secondLines, terminal := sweepResultLines(t, cts2.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}
	if n := simulated.Load(); n != 0 {
		t.Fatalf("restarted worker simulated %d specs, want 0 (all served from the store)", n)
	}
	for i := range firstLines {
		if firstLines[i] != secondLines[i] {
			t.Fatalf("result line %d differs across restart:\n first:  %s\n second: %s", i, firstLines[i], secondLines[i])
		}
	}
}

// TestClusterCoalescing: concurrent submissions of the same key share
// one task — the second joins rather than re-dispatching — and one
// completion settles every waiter.
func TestClusterCoalescing(t *testing.T) {
	c := newCluster(time.Minute)
	now := time.Now()
	c.register("w1", now)

	spec := harness.Spec{Workload: mustWorkload(t, "Empty")}
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	t1, created, local := c.submit(key, spec, now)
	if !created || local {
		t.Fatalf("first submit: created=%v local=%v, want created, remote", created, local)
	}
	t2, created, local := c.submit(key, spec, now)
	if created || local || t1 != t2 {
		t.Fatalf("second submit did not coalesce onto the open task")
	}
	if got := c.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}

	res := &harness.Result{Name: "Empty"}
	c.complete("w1", key, res, now)
	select {
	case <-t1.done:
	default:
		t.Fatal("completion did not settle the shared task")
	}
	if t1.res != res || t1.err != nil {
		t.Fatalf("task settled with res=%v err=%v", t1.res, t1.err)
	}
	// A replay of the same key is stale, not a crash.
	c.complete("w1", key, res, now)
	if got := c.stale.Load(); got != 1 {
		t.Fatalf("stale counter = %d, want 1", got)
	}
}

// TestClusterRequeueOnWorkerDeath: work assigned to a worker that
// goes silent past the TTL reroutes to the survivors; with no
// survivors a waiter claims it for local execution.
func TestClusterRequeueOnWorkerDeath(t *testing.T) {
	const ttl = time.Minute
	c := newCluster(ttl)
	t0 := time.Now()
	c.register("w1", t0)
	c.register("w2", t0)

	// Build a spec whose key shards onto w1 (sorted ids: w1 owns even
	// leading bytes, w2 odd).
	var spec harness.Spec
	var key harness.Key
	for seed := int64(1); ; seed++ {
		spec = harness.Spec{Workload: mustWorkload(t, "Empty"), Seed: seed}
		k, err := harness.SpecKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		if int(k[0])%2 == 0 {
			key = k
			break
		}
	}
	task, _, local := c.submit(key, spec, t0)
	if local || task.worker != "w1" {
		t.Fatalf("task routed to %q (local=%v), want w1", task.worker, local)
	}

	// w1 pulls the task, then dies; w2 stays in touch. The next
	// activity past the TTL reroutes the pull onto w2.
	pulled, err := c.poll(context.Background(), "w1", 4, 0)
	if err != nil || len(pulled) != 1 || pulled[0] != task {
		t.Fatalf("w1 poll = %v, %v; want the routed task", pulled, err)
	}
	t1 := t0.Add(ttl / 2)
	if _, err := c.poll(context.Background(), "w2", 4, 0); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.workers["w2"].lastSeen = t1
	c.mu.Unlock()
	t2 := t0.Add(ttl + time.Second)
	if n := c.liveWorkers(t2); n != 1 {
		t.Fatalf("live workers after w1 expiry = %d, want 1", n)
	}
	if got := c.requeued.Load(); got != 1 {
		t.Fatalf("requeued counter = %d, want 1", got)
	}
	if task.worker != "w2" {
		t.Fatalf("task rerouted to %q, want w2", task.worker)
	}

	// w2 dies too: the waiting request claims the orphan and runs it
	// locally.
	t3 := t1.Add(ttl + time.Second)
	if !c.claimOrphan(task, t3) {
		t.Fatal("claimOrphan failed after total fleet loss")
	}
	if got := c.localRuns.Load(); got != 1 {
		t.Fatalf("localRuns counter = %d, want 1", got)
	}
	// A dead worker's late result for the claimed task is stale.
	c.complete("w1", key, &harness.Result{Name: "Empty"}, t3)
	if task.finished {
		t.Fatal("late result finished a task the waiter already claimed")
	}
	c.finish(task, &harness.Result{Name: "Empty"}, nil)
	if !task.finished {
		t.Fatal("finish did not settle the claimed task")
	}
}

// TestClusterUnknownWorkerPoll: polling without registering is a 404
// telling the worker to register, not a hang or a 500.
func TestClusterUnknownWorkerPoll(t *testing.T) {
	_, cts := startCoordinator(t, Config{})
	resp, err := http.Post(cts.URL+"/v1/cluster/poll", "application/json",
		strings.NewReader(`{"worker":"ghost","max":1,"wait_ms":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
