package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/store"
	"sgxgauge/internal/workloads"
)

// startCoordinator boots a coordinator daemon on an ephemeral
// listener.
func startCoordinator(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Coordinator = true
	if cfg.EPCPages == 0 {
		cfg.EPCPages = testEPC
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// startWorker boots a worker daemon (its own Server and runner) and
// runs its pull loop against the coordinator until test cleanup.
func startWorker(t *testing.T, coordinatorURL, id string, cfg Config) (*Server, *Worker) {
	t.Helper()
	if cfg.EPCPages == 0 {
		cfg.EPCPages = testEPC
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	ws := New(cfg)
	wk := NewWorker(ws, coordinatorURL, id)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ws, wk
}

// waitForWorkers blocks until the coordinator sees n live workers.
func waitForWorkers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.cluster.liveWorkers(time.Now()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw %d workers", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sweepResultLines posts a sweep and returns its raw "result" event
// lines plus the terminal event.
func sweepResultLines(t *testing.T, baseURL, body string) (lines []string, terminal sweepEvent) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		terminal = ev
		if ev.Event == "result" {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, terminal
}

// sweepBody returns a sweep request of n distinct Empty/Vanilla specs.
func sweepBody(n int) string {
	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"workload":"Empty","mode":"Vanilla","size":"Low","seed":%d}`, i+1)
	}
	return "[" + strings.Join(specs, ",") + "]"
}

// TestClusterSweepTwoWorkers is the end-to-end acceptance test: a
// coordinator with two registered workers serves a sweep entirely
// from the fleet — every spec executes on the worker its key shards
// to, none on the coordinator — and the stream is byte-identical to
// the same sweep on a standalone single-node daemon.
func TestClusterSweepTwoWorkers(t *testing.T) {
	coord, cts := startCoordinator(t, Config{})
	_, wk1 := startWorker(t, cts.URL, "w1", Config{})
	_, wk2 := startWorker(t, cts.URL, "w2", Config{})
	waitForWorkers(t, coord, 2)

	const n = 8
	body := sweepBody(n)
	clusterLines, terminal := sweepResultLines(t, cts.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}
	if len(clusterLines) != n {
		t.Fatalf("got %d result lines, want %d", len(clusterLines), n)
	}

	// The coordinator never simulated; the fleet did all the work,
	// split exactly by key shard over the sorted worker ids.
	if got := coord.cluster.localRuns.Load(); got != 0 {
		t.Fatalf("coordinator ran %d specs locally, want 0", got)
	}
	var specs []harness.Spec
	if err := json.Unmarshal([]byte(body), &specs); err != nil {
		t.Fatal(err)
	}
	wantPerWorker := map[string]uint64{}
	ids := []string{"w1", "w2"}
	sort.Strings(ids)
	for _, spec := range specs {
		key, err := coord.runner.Key(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantPerWorker[ids[int(key[0])%len(ids)]]++
	}
	if got := wk1.executed.Load(); got != wantPerWorker["w1"] {
		t.Errorf("w1 executed %d specs, want %d (its shard)", got, wantPerWorker["w1"])
	}
	if got := wk2.executed.Load(); got != wantPerWorker["w2"] {
		t.Errorf("w2 executed %d specs, want %d (its shard)", got, wantPerWorker["w2"])
	}
	if got := coord.cluster.completed.Load(); got != n {
		t.Errorf("cluster completed %d tasks, want %d", got, n)
	}

	// Byte-identical to a single-node daemon running the same sweep.
	single := New(Config{EPCPages: testEPC, Seed: 7, Workers: 4})
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	singleLines, terminal := sweepResultLines(t, sts.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("single-node terminal event = %+v, want done ok:true", terminal)
	}
	for i := range singleLines {
		if clusterLines[i] != singleLines[i] {
			t.Fatalf("result line %d differs between cluster and single node:\n cluster: %s\n single:  %s",
				i, clusterLines[i], singleLines[i])
		}
	}
}

// TestClusterFigureFromFleet: the figures path draws on the same
// fleet machinery — regenerating a figure through a coordinator runs
// nothing on the coordinator itself.
func TestClusterFigureFromFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration in -short mode")
	}
	coord, cts := startCoordinator(t, Config{})
	startWorker(t, cts.URL, "w1", Config{})
	startWorker(t, cts.URL, "w2", Config{})
	waitForWorkers(t, coord, 2)

	resp, err := http.Get(cts.URL + "/v1/figures/7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure via cluster: status %d, want 200", resp.StatusCode)
	}
	if got := coord.cluster.localRuns.Load(); got != 0 {
		t.Fatalf("figure generation ran %d specs on the coordinator, want 0", got)
	}
}

// TestClusterWorkerStoreWarm: a fresh coordinator dispatching to a
// restarted worker whose persistent store already holds the results
// serves the whole sweep without a single simulation anywhere.
func TestClusterWorkerStoreWarm(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *store.Store {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	const n = 4
	body := sweepBody(n)

	coord1, cts1 := startCoordinator(t, Config{})
	startWorker(t, cts1.URL, "w1", Config{Store: openStore()})
	waitForWorkers(t, coord1, 1)
	firstLines, terminal := sweepResultLines(t, cts1.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}

	// "Restart": a brand-new coordinator and a brand-new worker
	// process sharing only the store directory. The progress hook is
	// installed before the pull loop starts: it fires only for specs
	// that actually simulate.
	coord2, cts2 := startCoordinator(t, Config{})
	ws2 := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2, Store: openStore()})
	var simulated atomic.Int64
	ws2.runner.Progress = func(harness.Progress) { simulated.Add(1) }
	wk2 := NewWorker(ws2, cts2.URL, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk2.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	waitForWorkers(t, coord2, 1)

	secondLines, terminal := sweepResultLines(t, cts2.URL, body)
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("terminal event = %+v, want done ok:true", terminal)
	}
	if n := simulated.Load(); n != 0 {
		t.Fatalf("restarted worker simulated %d specs, want 0 (all served from the store)", n)
	}
	for i := range firstLines {
		if firstLines[i] != secondLines[i] {
			t.Fatalf("result line %d differs across restart:\n first:  %s\n second: %s", i, firstLines[i], secondLines[i])
		}
	}
}

// TestClusterCoalescing: concurrent submissions of the same key share
// one task — the second joins rather than re-dispatching — and one
// completion settles every waiter.
func TestClusterCoalescing(t *testing.T) {
	c := newCluster(time.Minute, 0, 0, nil)
	now := time.Now()
	c.register("w1", now)

	spec := harness.Spec{Workload: mustWorkload(t, "Empty")}
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	t1, created, local := c.submit(key, spec, now)
	if !created || local {
		t.Fatalf("first submit: created=%v local=%v, want created, remote", created, local)
	}
	t2, created, local := c.submit(key, spec, now)
	if created || local || t1 != t2 {
		t.Fatalf("second submit did not coalesce onto the open task")
	}
	if got := c.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}

	// The worker must pull the task before its result is acceptable.
	if _, err := c.poll(context.Background(), "w1", 4, 0); err != nil {
		t.Fatal(err)
	}
	res := &harness.Result{Name: "Empty"}
	if !c.complete("w1", key, res, now) {
		t.Fatal("owning worker's result for its pulled task was not accepted")
	}
	select {
	case <-t1.done:
	default:
		t.Fatal("completion did not settle the shared task")
	}
	if t1.res != res || t1.err != nil {
		t.Fatalf("task settled with res=%v err=%v", t1.res, t1.err)
	}
	// A replay of the same key is stale, not a crash.
	c.complete("w1", key, res, now)
	if got := c.stale.Load(); got != 1 {
		t.Fatalf("stale counter = %d, want 1", got)
	}
}

// TestClusterRequeueOnWorkerDeath: work assigned to a worker that
// goes silent past the TTL reroutes to the survivors; with no
// survivors a waiter claims it for local execution.
func TestClusterRequeueOnWorkerDeath(t *testing.T) {
	const ttl = time.Minute
	c := newCluster(ttl, 0, time.Millisecond, nil)
	t0 := time.Now()
	c.register("w1", t0)
	c.register("w2", t0)

	// Build a spec whose key shards onto w1 (sorted ids: w1 owns even
	// leading bytes, w2 odd).
	var spec harness.Spec
	var key harness.Key
	for seed := int64(1); ; seed++ {
		spec = harness.Spec{Workload: mustWorkload(t, "Empty"), Seed: seed}
		k, err := harness.SpecKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		if int(k[0])%2 == 0 {
			key = k
			break
		}
	}
	task, _, local := c.submit(key, spec, t0)
	if local || task.worker != "w1" {
		t.Fatalf("task routed to %q (local=%v), want w1", task.worker, local)
	}

	// w1 pulls the task, then dies; w2 stays in touch. The next
	// activity past the TTL reroutes the pull onto w2.
	pulled, err := c.poll(context.Background(), "w1", 4, 0)
	if err != nil || len(pulled) != 1 || pulled[0] != task {
		t.Fatalf("w1 poll = %v, %v; want the routed task", pulled, err)
	}
	t1 := t0.Add(ttl / 2)
	if _, err := c.poll(context.Background(), "w2", 4, 0); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.workers["w2"].lastSeen = t1
	c.mu.Unlock()
	t2 := t0.Add(ttl + time.Second)
	if n := c.liveWorkers(t2); n != 1 {
		t.Fatalf("live workers after w1 expiry = %d, want 1", n)
	}
	if got := c.retries.Load(); got != 1 {
		t.Fatalf("retries counter = %d, want 1 (expiry of a pulled task charges the budget)", got)
	}
	// The failed attempt parks the task for its backoff; the reroute
	// onto w2 lands when the (1ms-base) delay elapses.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		owner := task.worker
		c.mu.Unlock()
		if owner == "w2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task rerouted to %q, want w2", owner)
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.requeued.Load(); got != 1 {
		t.Fatalf("requeued counter = %d, want 1", got)
	}

	// w2 dies too: the waiting request claims the orphan and runs it
	// locally.
	t3 := t1.Add(ttl + time.Second)
	if !c.claimOrphan(task, t3) {
		t.Fatal("claimOrphan failed after total fleet loss")
	}
	if got := c.localRuns.Load(); got != 1 {
		t.Fatalf("localRuns counter = %d, want 1", got)
	}
	// A dead worker's late result for the claimed task is stale.
	c.complete("w1", key, &harness.Result{Name: "Empty"}, t3)
	if task.finished {
		t.Fatal("late result finished a task the waiter already claimed")
	}
	c.finish(task, &harness.Result{Name: "Empty"}, nil)
	if !task.finished {
		t.Fatal("finish did not settle the claimed task")
	}
}

// TestClusterUnknownWorkerPoll: polling (or heartbeating) without
// registering is a 404 telling the worker to register, not a hang or
// a 500.
func TestClusterUnknownWorkerPoll(t *testing.T) {
	_, cts := startCoordinator(t, Config{})
	for _, path := range []string{"/v1/cluster/poll", "/v1/cluster/heartbeat"} {
		resp, err := http.Post(cts.URL+path, "application/json",
			strings.NewReader(`{"worker":"ghost","max":1,"wait_ms":0}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestClusterResultValidation: a result reaches a task only from the
// live worker that pulled it, and only when it identifies as the
// task's spec. Everything else is stale or rejected — and a mismatch
// from the owning worker fails the task loudly instead of leaving it
// assigned forever.
func TestClusterResultValidation(t *testing.T) {
	c := newCluster(time.Minute, 0, 0, nil)
	now := time.Now()
	c.register("w1", now)

	spec := harness.Spec{Workload: mustWorkload(t, "Empty")}
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	task, _, local := c.submit(key, spec, now)
	if local {
		t.Fatal("submit fell back to local execution with a live worker")
	}
	good := &harness.Result{Name: "Empty"}

	// Routed but never pulled: rejected, task still queued.
	if c.complete("w1", key, good, now) {
		t.Fatal("accepted a result for a task the worker never pulled")
	}
	if got := c.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if task.finished {
		t.Fatal("rejected result finished the task")
	}

	// Pulled by w1; a post from a different live worker is stale.
	if _, err := c.poll(context.Background(), "w1", 4, 0); err != nil {
		t.Fatal(err)
	}
	c.register("w2", now)
	if c.complete("w2", key, good, now) {
		t.Fatal("accepted a result from a worker that does not own the task")
	}
	if got := c.stale.Load(); got != 1 {
		t.Fatalf("stale counter = %d, want 1", got)
	}
	if task.finished {
		t.Fatal("non-owner's result finished the task")
	}

	// The owner posting a result for the wrong spec fails the task.
	if c.complete("w1", key, &harness.Result{Name: "BTree"}, now) {
		t.Fatal("accepted a result naming the wrong workload")
	}
	if !task.finished || task.err == nil || task.res != nil {
		t.Fatalf("mismatched result left task finished=%v err=%v res=%v, want a loud failure",
			task.finished, task.err, task.res)
	}

	// A fresh task for the same key completes normally end to end
	// (with two workers it shards by the key's leading byte).
	task2, created, _ := c.submit(key, spec, now)
	if !created || task2 == task {
		t.Fatal("failed task was not retired from the pending map")
	}
	owner := []string{"w1", "w2"}[int(key[0])%2]
	if _, err := c.poll(context.Background(), owner, 4, 0); err != nil {
		t.Fatal(err)
	}
	if !c.complete(owner, key, good, now) {
		t.Fatal("owning worker's matching result was not accepted")
	}
	if task2.res != good || task2.err != nil {
		t.Fatalf("task settled with res=%v err=%v", task2.res, task2.err)
	}
}

// TestClusterResultsPostPoisonRejected: the unauthenticated results
// endpoint cannot be used to seed the shared cache and persistent
// store with fabricated results — a post for a key the coordinator
// never dispatched is dropped whether or not the poster's worker id
// is registered.
func TestClusterResultsPostPoisonRejected(t *testing.T) {
	coord, cts := startCoordinator(t, Config{Store: func() *store.Store {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()})
	resp, err := http.Post(cts.URL+"/v1/cluster/register", "application/json",
		strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	key := strings.Repeat("ab", 32)
	line, err := json.Marshal(resultLine{Key: key, Result: (&harness.Result{Name: "Empty", Attempts: 1}).Wire()})
	if err != nil {
		t.Fatal(err)
	}
	for _, worker := range []string{"w1", "ghost"} {
		resp, err := http.Post(cts.URL+"/v1/cluster/results?worker="+worker,
			"application/x-ndjson", strings.NewReader(string(line)+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		var rr resultsResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rr.Accepted != 0 {
			t.Errorf("poison post as %q: accepted %d results, want 0", worker, rr.Accepted)
		}
	}
	if got := coord.cluster.stale.Load(); got != 2 {
		t.Errorf("stale counter = %d, want 2", got)
	}

	// The fabricated result reached neither the cache nor the store.
	resp, err = http.Get(cts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/results/%s: status %d, want 404 (poisoned entry served)", key, resp.StatusCode)
	}
	if n := coord.store.Len(); n != 0 {
		t.Fatalf("store holds %d entries after poison posts, want 0", n)
	}
}

// TestWorkerReregistersAfterFailedResultsPost: a worker whose results
// post dies must re-register — polling again under the old
// registration would keep the dropped batch assigned at the
// coordinator forever.
func TestWorkerReregistersAfterFailedResultsPost(t *testing.T) {
	ws := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	spec := ws.runner.Normalize(harness.Spec{Workload: mustWorkload(t, "Empty"), Size: workloads.Low, Seed: 1})
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := spec.Wire()
	if err != nil {
		t.Fatal(err)
	}
	assignment := taskAssignment{Key: key.String(), Spec: wire}

	var registers, posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		registers.Add(1)
		writeJSON(w, http.StatusOK, registerResponse{Workers: 1, TTLMS: 60_000})
	})
	mux.HandleFunc("POST /v1/cluster/poll", func(w http.ResponseWriter, r *http.Request) {
		resp := pollResponse{}
		if registers.Load() == 1 && posts.Load() == 0 {
			resp.Specs = []taskAssignment{assignment}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, heartbeatResponse{OK: true})
	})
	mux.HandleFunc("POST /v1/cluster/results", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if posts.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, resultsResponse{Accepted: 0})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	wk := NewWorker(ws, ts.URL, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	deadline := time.Now().Add(10 * time.Second)
	for registers.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never re-registered after a failed results post (registers=%d, postFails=%d)",
				registers.Load(), wk.postFails.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := wk.postFails.Load(); got < 1 {
		t.Fatalf("postFails = %d, want >= 1", got)
	}
}

// TestClusterHeartbeat: a heartbeat refreshes liveness without
// pulling work, so a worker stuck simulating one long spec outlives
// the TTL; silence after the last beat still expires it.
func TestClusterHeartbeat(t *testing.T) {
	const ttl = time.Minute
	c := newCluster(ttl, 0, time.Millisecond, nil)
	t0 := time.Now()
	c.register("w1", t0)

	t1 := t0.Add(ttl - time.Second)
	if !c.heartbeat("w1", t1) {
		t.Fatal("heartbeat for a registered worker reported unknown")
	}
	// Past the original TTL, alive only because of the beat.
	if n := c.liveWorkers(t0.Add(ttl + time.Second)); n != 1 {
		t.Fatalf("live workers past the registration TTL = %d, want 1 (heartbeat ignored)", n)
	}
	if n := c.liveWorkers(t1.Add(ttl + time.Second)); n != 0 {
		t.Fatalf("live workers past the heartbeat TTL = %d, want 0", n)
	}
	if c.heartbeat("w1", t1.Add(ttl+2*time.Second)) {
		t.Fatal("heartbeat for an expired worker reported registered")
	}
}

// TestClusterPollDwellClamped: an idle long-poll returns before the
// TTL can expire the polling worker — otherwise a short TTL would
// churn idle workers through expiry and re-registration.
func TestClusterPollDwellClamped(t *testing.T) {
	c := newCluster(time.Second, 0, 0, nil)
	c.register("w1", time.Now())
	start := time.Now()
	batch, err := c.poll(context.Background(), "w1", 1, 10*time.Second)
	if err != nil || len(batch) != 0 {
		t.Fatalf("poll = %v, %v; want a clean empty batch", batch, err)
	}
	if d := time.Since(start); d >= time.Second {
		t.Fatalf("idle poll dwelled %v, at or past the 1s TTL", d)
	}
	if n := c.liveWorkers(time.Now()); n != 1 {
		t.Fatalf("worker expired during its own idle long-poll (live=%d)", n)
	}
}

// TestResultLineDecoderLimits: the results stream has no whole-body
// cap — a batch of results far larger than any fixed request limit
// decodes line by line — while a single line over maxResultLine is a
// clear error rather than unbounded buffering.
func TestResultLineDecoderLimits(t *testing.T) {
	line, err := json.Marshal(resultLine{Key: strings.Repeat("ab", 32),
		Result: (&harness.Result{Name: "Empty", Attempts: 1}).Wire()})
	if err != nil {
		t.Fatal(err)
	}
	line = append(line, '\n')
	want := (10<<20)/len(line) + 1 // stream well past the old 8 MiB body cap
	d := newResultLineDecoder(strings.NewReader(strings.Repeat(string(line), want)))
	got := 0
	for {
		_, res, _, err := d.next()
		if err == errDecodeDone {
			break
		}
		if err != nil {
			t.Fatalf("line %d: %v", got, err)
		}
		if res.Name != "Empty" {
			t.Fatalf("line %d decoded Name %q", got, res.Name)
		}
		got++
	}
	if got != want {
		t.Fatalf("decoded %d lines, want %d", got, want)
	}

	big := `{"key":"` + strings.Repeat("a", maxResultLine) + `"}`
	d = newResultLineDecoder(strings.NewReader(big))
	if _, _, _, err := d.next(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line error = %v, want a limit error", err)
	}
}

// TestClusterLifecycleLeaksNoGoroutines is the goroleak analyzer's
// runtime counterpart: a full coordinator+worker lifecycle — register,
// sweep through the fleet, worker drain/deregister, server Drain —
// must return the process to its starting goroutine count. The
// motivating bug was an idle worker goroutine that outlived its
// context and kept the coordinator routing to a ghost; a leak here
// shows up as a count that never settles back down.
func TestClusterLifecycleLeaksNoGoroutines(t *testing.T) {
	// Let goroutines from earlier tests park before the baseline.
	time.Sleep(100 * time.Millisecond)
	before := runtime.NumGoroutine()

	// Manual lifecycle (no t.Cleanup): the accounting below must run
	// after teardown, inside the test body.
	cs := New(Config{Coordinator: true, EPCPages: testEPC, Seed: 7, Workers: 2})
	ts := httptest.NewServer(cs.Handler())
	ws := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	wk := NewWorker(ws, ts.URL, "leakcheck")
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		wk.Run(ctx)
	}()
	waitForWorkers(t, cs, 1)

	// Real traffic so leaders, the batch fan-out, the heartbeat loop
	// and the results stream all actually spin up.
	lines, terminal := sweepResultLines(t, ts.URL, sweepBody(3))
	if len(lines) != 3 || terminal.Event != "done" || !terminal.OK {
		t.Fatalf("fleet sweep: %d results, terminal %+v", len(lines), terminal)
	}

	// Teardown in drain order: cancel the worker (it deregisters on the
	// way out), drain both servers' leader goroutines, close the
	// listener.
	cancel()
	<-workerDone
	if cs.cluster.liveWorkers(time.Now()) != 0 {
		t.Error("worker still registered after drain; deregister did not land")
	}
	cs.Drain()
	ws.Drain()
	ts.Close()

	// Goroutines park asynchronously (idle HTTP conns, timer reapers);
	// poll until the count settles at the baseline instead of asserting
	// a single racy snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: before=%d, after=%d (never settled); stacks:\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
