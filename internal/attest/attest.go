// Package attest models a DCAP-style remote-attestation stack on the
// simulated SGX machine: MRENCLAVE-like measurements, quote
// generation and verification, and platform-bound sealed key
// exchange.
//
// Everything is deterministic — measurements are pure functions of the
// manifest and machine configuration, platform keys derive from the
// machine seed, and every operation charges simulated cycles through
// the machine's cost model — so an attested multi-enclave scenario is
// exactly as reproducible as a plain workload run. The shape follows
// the Gramine attestor / DCAP verifier split of the go-ethereum SGX
// stack the ROADMAP names: an in-enclave report (EREPORT), a quoting
// step signing it with a platform key, and an out-of-enclave verifier
// checking the signature and the expected measurement.
package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"

	"sgxgauge/internal/enclave"
	"sgxgauge/internal/libos"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/sgx"
)

// Measurement is an MRENCLAVE-like identity: the SHA-256 of what was
// (or would be) loaded into the enclave.
type Measurement [32]byte

// String renders the measurement as lowercase hex.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// writeStr appends one length-framed string to the hash, so field
// boundaries cannot alias ("ab","c" never hashes like "a","bc").
func writeStr(h hash.Hash, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func writeU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

// MeasureManifest computes the launch measurement a LibOS-style loader
// would extend while building an enclave from the manifest on a
// machine with the given configuration: the binary, the trusted-file
// list in manifest order, the declared enclave geometry, and the
// machine parameters that change what gets loaded (EPC size and
// integrity tree). Any tampering with the manifest — an added trusted
// file, a flipped protected-files bit, a resized enclave — yields a
// different measurement, which is what quote verification catches.
func MeasureManifest(man libos.Manifest, cfg sgx.Config) Measurement {
	h := sha256.New()
	writeStr(h, "sgxgauge-mrenclave-v1")
	writeStr(h, man.Binary)
	writeU64(h, uint64(len(man.Libs)))
	for _, lib := range man.Libs {
		writeStr(h, lib)
	}
	writeU64(h, uint64(len(man.Files)))
	for _, f := range man.Files {
		writeStr(h, f)
	}
	writeU64(h, uint64(man.EnclaveSizePages))
	writeU64(h, uint64(man.Threads))
	writeU64(h, uint64(man.InternalMemPages))
	if man.ProtectedFiles {
		writeU64(h, 1)
	} else {
		writeU64(h, 0)
	}
	writeU64(h, uint64(cfg.EPCPages))
	if cfg.IntegrityTree {
		writeU64(h, 1)
	} else {
		writeU64(h, 0)
	}
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// MeasureEnclave returns a built enclave's launch measurement (the
// EEXTEND chain the machine accumulated while loading it), in
// attestation form.
func MeasureEnclave(enc *enclave.Enclave) Measurement { return Measurement(enc.Measurement) }

// Quote is a remote-attestation quote: a report (measurement + report
// data) signed by the platform's quoting key. ReportData carries the
// attester's channel-binding payload — typically a hash of its
// ephemeral session public key — exactly like the 64-byte REPORTDATA
// field real quotes embed (truncated to 32 here).
type Quote struct {
	Measurement Measurement
	ReportData  [32]byte
	Signature   [32]byte
}

// Verification errors. ErrQuoteSignature means the quote was not
// produced by this platform (or was bit-tampered in flight);
// ErrMeasurementMismatch means it was, but over different enclave
// contents than the verifier expects.
var (
	ErrQuoteSignature      = errors.New("attest: quote signature invalid")
	ErrMeasurementMismatch = errors.New("attest: measurement mismatch")
)

// Cycle-cost factors, in units of the machine cost model's Compute
// cost. The magnitudes mirror the real stack's ordering: producing a
// report (EREPORT, a MAC over ~400 bytes) is cheap, signing a quote
// (ECDSA over the report) is ~an order costlier, and verifying one
// (certificate chain plus two signature checks, the DCAP verifier's
// job) costs about twice a sign.
const (
	reportFactor = 256
	signFactor   = 2048
	verifyFactor = 4096
	// sealBytesPerCycle divides the sealed-blob length to model
	// AES-GCM-style sealing throughput (~0.5 cycles/byte with AES-NI,
	// matching the protected-file-system constant).
	sealBytesPerCycle = 2
)

// Platform is one machine's attestation root: the quoting key the
// (simulated) quoting enclave signs with and the sealing engine bound
// to the platform. Both derive from the machine seed, so equal seeds
// attest identically.
type Platform struct {
	quoteKey [32]byte
	seal     *mee.Engine
}

// NewPlatform derives the attestation root for a machine. Call it
// with m.Config().Seed so the platform is bound to the booted machine.
func NewPlatform(seed uint64) *Platform {
	p := &Platform{seal: mee.New(seed ^ 0x61747465737421)} // "attest!"
	h := sha256.New()
	writeU64(h, seed)
	writeStr(h, "sgxgauge-attest-qe")
	copy(p.quoteKey[:], h.Sum(nil))
	return p
}

// signature computes the quote MAC standing in for the ECDSA
// signature of the real quoting enclave.
func (p *Platform) signature(meas Measurement, reportData [32]byte) [32]byte {
	mac := hmac.New(sha256.New, p.quoteKey[:])
	mac.Write(meas[:])
	mac.Write(reportData[:])
	var sig [32]byte
	copy(sig[:], mac.Sum(nil))
	return sig
}

// Quote produces a quote over the measurement and report data,
// charging the thread for the EREPORT and the quoting enclave's
// signing work (plus the ECALL round trip into the QE).
func (p *Platform) Quote(t *sgx.Thread, meas Measurement, reportData [32]byte) Quote {
	c := &t.Env().M.Costs
	t.Compute(c.Compute*(reportFactor+signFactor) + c.ECallEnter + c.ECallExit)
	return Quote{Measurement: meas, ReportData: reportData, Signature: p.signature(meas, reportData)}
}

// Verify checks the quote's platform signature, charging the DCAP
// verifier's certificate-and-signature work. It does not judge the
// measurement — callers compare against their expected Measurement
// (see VerifyExpected), mirroring the verifier/policy split.
func (p *Platform) Verify(t *sgx.Thread, q Quote) error {
	c := &t.Env().M.Costs
	t.Compute(c.Compute * verifyFactor)
	want := p.signature(q.Measurement, q.ReportData)
	if !hmac.Equal(want[:], q.Signature[:]) {
		return ErrQuoteSignature
	}
	return nil
}

// VerifyExpected is Verify plus the policy check: the quoted
// measurement must equal the one the verifier derived independently
// (from the manifest it trusts). A valid signature over the wrong
// measurement — the tampered-manifest case — fails here.
func (p *Platform) VerifyExpected(t *sgx.Thread, q Quote, want Measurement) error {
	if err := p.Verify(t, q); err != nil {
		return err
	}
	if q.Measurement != want {
		return fmt.Errorf("%w: quoted %s, expected %s", ErrMeasurementMismatch, q.Measurement, want)
	}
	return nil
}

// SealTo seals data to an enclave identity on this platform, charging
// the sealing crypto. Only UnsealAt with the same enclave identity
// and context — on the same platform — recovers it; any bit flip in
// the sealed blob is detected.
func (p *Platform) SealTo(t *sgx.Thread, enclaveID uint32, context uint64, data []byte) []byte {
	sealed := p.seal.Seal(enclaveID, context, data)
	t.Compute(uint64(len(sealed)) / sealBytesPerCycle)
	return sealed
}

// UnsealAt reverses SealTo inside the target enclave.
func (p *Platform) UnsealAt(t *sgx.Thread, enclaveID uint32, context uint64, sealed []byte) ([]byte, error) {
	t.Compute(uint64(len(sealed)) / sealBytesPerCycle)
	return p.seal.Unseal(enclaveID, context, sealed)
}

// Session is an attested secure channel: after both ends verified
// each other's quotes and exchanged the sealed session secret, they
// encrypt the request stream under it. Message sealing reuses the
// platform engine with the session identity as the enclave binding
// and a caller-supplied message counter as the context, so every
// message has a fresh keystream and MAC.
type Session struct {
	seal *mee.Engine
	id   uint32
}

// NewSession opens the channel state shared by two attested enclaves.
// Both ends derive the same session from the platform and the two
// enclave identities; secret is the sealed-exchanged session secret
// both now hold.
func NewSession(p *Platform, clientID, serverID uint32, secret []byte) *Session {
	h := sha256.New()
	writeStr(h, "sgxgauge-attest-session")
	writeU64(h, uint64(clientID))
	writeU64(h, uint64(serverID))
	h.Write(secret)
	sum := h.Sum(nil)
	return &Session{
		seal: mee.New(binary.LittleEndian.Uint64(sum[:8])),
		id:   clientID ^ serverID,
	}
}

// Encrypt seals one message under the session, charging the thread
// for the crypto.
func (s *Session) Encrypt(t *sgx.Thread, counter uint64, plaintext []byte) []byte {
	sealed := s.seal.Seal(s.id, counter, plaintext)
	t.Compute(uint64(len(sealed)) / sealBytesPerCycle)
	return sealed
}

// Decrypt opens one message; a wrong counter (replay), wrong session,
// or any tampering is an error.
func (s *Session) Decrypt(t *sgx.Thread, counter uint64, ciphertext []byte) ([]byte, error) {
	t.Compute(uint64(len(ciphertext)) / sealBytesPerCycle)
	return s.seal.Unseal(s.id, counter, ciphertext)
}

// SessionSecret deterministically derives the client's ephemeral
// session secret from the scenario seed and the two enclave
// identities — standing in for the ECDH the real handshake performs.
func SessionSecret(seed int64, clientID, serverID uint32) []byte {
	h := sha256.New()
	writeStr(h, "sgxgauge-attest-ecdh")
	writeU64(h, uint64(seed))
	writeU64(h, uint64(clientID))
	writeU64(h, uint64(serverID))
	return h.Sum(nil)
}
