package attest

import (
	"bytes"
	"errors"
	"testing"

	"sgxgauge/internal/libos"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/sgx"
)

func testManifest() libos.Manifest {
	return libos.Manifest{
		Binary:           "Lighttpd",
		Libs:             []string{"libc", "libssl"},
		Files:            []string{"conf", "htdocs/index"},
		EnclaveSizePages: 2048,
		Threads:          16,
		InternalMemPages: 512,
	}
}

func testEnv(t *testing.T) (*sgx.Machine, *sgx.Env) {
	t.Helper()
	m := sgx.NewMachine(sgx.Config{EPCPages: 128, Seed: 9})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 32); err != nil {
		t.Fatalf("launch: %v", err)
	}
	return m, env
}

func TestMeasurementStableAndSensitive(t *testing.T) {
	cfg := sgx.Config{EPCPages: 512}
	base := MeasureManifest(testManifest(), cfg)
	if again := MeasureManifest(testManifest(), cfg); again != base {
		t.Fatalf("measurement not stable: %s vs %s", base, again)
	}

	mutations := map[string]func(*libos.Manifest, *sgx.Config){
		"binary":          func(m *libos.Manifest, _ *sgx.Config) { m.Binary = "Lighttpd2" },
		"added-file":      func(m *libos.Manifest, _ *sgx.Config) { m.Files = append(m.Files, "evil") },
		"reordered-files": func(m *libos.Manifest, _ *sgx.Config) { m.Files = []string{"htdocs/index", "conf"} },
		"enclave-size":    func(m *libos.Manifest, _ *sgx.Config) { m.EnclaveSizePages++ },
		"threads":         func(m *libos.Manifest, _ *sgx.Config) { m.Threads++ },
		"protected-files": func(m *libos.Manifest, _ *sgx.Config) { m.ProtectedFiles = true },
		"epc-pages":       func(_ *libos.Manifest, c *sgx.Config) { c.EPCPages = 256 },
		"integrity-tree":  func(_ *libos.Manifest, c *sgx.Config) { c.IntegrityTree = true },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			man, mcfg := testManifest(), cfg
			mutate(&man, &mcfg)
			if MeasureManifest(man, mcfg) == base {
				t.Fatalf("mutation %s did not change the measurement", name)
			}
		})
	}

	// Field framing: moving bytes across a field boundary must not
	// alias ("ab","c" vs "a","bc").
	a, b := testManifest(), testManifest()
	a.Files = []string{"ab", "c"}
	b.Files = []string{"a", "bc"}
	if MeasureManifest(a, cfg) == MeasureManifest(b, cfg) {
		t.Fatal("field framing aliases across list boundaries")
	}
}

func TestQuoteRoundTripAndTamperRejection(t *testing.T) {
	m, env := testEnv(t)
	p := NewPlatform(m.Config().Seed)
	tr := env.Main

	meas := MeasureManifest(testManifest(), m.Config())
	var rd [32]byte
	rd[0] = 0xaa
	before := tr.Clock.Cycles()
	q := p.Quote(tr, meas, rd)
	if tr.Clock.Cycles() == before {
		t.Fatal("quote generation charged no cycles")
	}
	if err := p.VerifyExpected(tr, q, meas); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}

	// A quote over a tampered manifest carries a valid signature but
	// the wrong measurement: the policy check must reject it.
	tampered := testManifest()
	tampered.Files = append(tampered.Files, "backdoor")
	qt := p.Quote(tr, MeasureManifest(tampered, m.Config()), rd)
	if err := p.VerifyExpected(tr, qt, meas); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("tampered-manifest quote: got %v, want ErrMeasurementMismatch", err)
	}

	// A bit-flipped signature must fail the signature check.
	qf := q
	qf.Signature[3] ^= 0x40
	if err := p.Verify(tr, qf); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("forged signature: got %v, want ErrQuoteSignature", err)
	}

	// A different platform (different machine seed) cannot verify
	// this platform's quotes.
	other := NewPlatform(m.Config().Seed + 1)
	if err := other.Verify(tr, q); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("cross-platform quote: got %v, want ErrQuoteSignature", err)
	}
}

func TestEnclaveMeasurementQuote(t *testing.T) {
	m, env := testEnv(t)
	p := NewPlatform(m.Config().Seed)
	tr := env.Main
	meas := MeasureEnclave(env.Enclave)
	if meas == (Measurement{}) {
		t.Fatal("built enclave has zero measurement")
	}
	q := p.Quote(tr, meas, [32]byte{})
	if err := p.VerifyExpected(tr, q, meas); err != nil {
		t.Fatalf("enclave-measurement quote rejected: %v", err)
	}
}

func TestSealedExchangeRoundTripAndTamper(t *testing.T) {
	m, env := testEnv(t)
	p := NewPlatform(m.Config().Seed)
	tr := env.Main
	const clientID, serverID = 7, 11

	secret := SessionSecret(42, clientID, serverID)
	sealed := p.SealTo(tr, serverID, 1, secret)
	got, err := p.UnsealAt(tr, serverID, 1, sealed)
	if err != nil {
		t.Fatalf("unseal: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("sealed exchange did not round-trip the secret")
	}

	// The chaos injector's MemTamper vectors against sealed pages are
	// bit flips, MAC corruption and truncation; the sealed secret
	// must reject each shape.
	for name, corrupt := range map[string]func([]byte) []byte{
		"bit-flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"mac-zero":  func(b []byte) []byte { copy(b[len(b)-32:], make([]byte, 32)); return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
	} {
		t.Run(name, func(t *testing.T) {
			blob := corrupt(append([]byte(nil), sealed...))
			if _, err := p.UnsealAt(tr, serverID, 1, blob); !errors.Is(err, mee.ErrMACMismatch) {
				t.Fatalf("%s sealed blob: got %v, want ErrMACMismatch", name, err)
			}
		})
	}

	// Wrong target enclave or wrong context must not unseal.
	if _, err := p.UnsealAt(tr, clientID, 1, sealed); err == nil {
		t.Fatal("unseal under the wrong enclave identity succeeded")
	}
	if _, err := p.UnsealAt(tr, serverID, 2, sealed); err == nil {
		t.Fatal("unseal under the wrong context succeeded")
	}
}

func TestSessionEncryptDecrypt(t *testing.T) {
	m, env := testEnv(t)
	p := NewPlatform(m.Config().Seed)
	tr := env.Main
	secret := SessionSecret(1, 3, 4)
	client := NewSession(p, 3, 4, secret)
	server := NewSession(p, 3, 4, secret)

	msg := []byte("GET /blocks/42")
	ct := client.Encrypt(tr, 0, msg)
	if bytes.Contains(ct, msg) {
		t.Fatal("ciphertext leaks plaintext")
	}
	pt, err := server.Decrypt(tr, 0, ct)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("decrypt: %v (%q)", err, pt)
	}
	// Replay under a different counter must fail.
	if _, err := server.Decrypt(tr, 1, ct); err == nil {
		t.Fatal("replayed message accepted under a new counter")
	}
	// A session derived from a different secret cannot read it.
	outsider := NewSession(p, 3, 4, []byte("wrong"))
	if _, err := outsider.Decrypt(tr, 0, ct); err == nil {
		t.Fatal("foreign session decrypted the message")
	}
}
