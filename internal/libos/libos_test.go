package libos

import (
	"bytes"
	"strings"
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

func boot(t *testing.T, epcPages int, man Manifest) (*sgx.Machine, *osal.FS, *Instance) {
	t.Helper()
	m := sgx.NewMachine(sgx.Config{EPCPages: epcPages})
	fs := osal.NewFS()
	if man.Binary == "" {
		man.Binary = "app"
	}
	inst, err := Start(m, fs, man)
	if err != nil {
		t.Fatal(err)
	}
	return m, fs, inst
}

func TestManifestDefaults(t *testing.T) {
	man := Manifest{Binary: "app"}.withDefaults(92 * 256) // 92 MB EPC
	if man.EnclaveSizePages != sgx.LibOSEnclaveFactor*92*256 {
		t.Errorf("EnclaveSizePages = %d", man.EnclaveSizePages)
	}
	if man.Threads != 16 {
		t.Errorf("Threads = %d, want 16 (Table 3)", man.Threads)
	}
	if man.InternalMemPages != 64*256 {
		t.Errorf("InternalMemPages = %d, want 64 MB equivalent", man.InternalMemPages)
	}
}

func TestManifestValidation(t *testing.T) {
	if err := (Manifest{}).Validate(); err == nil {
		t.Error("manifest without binary validated")
	}
	if err := (Manifest{Binary: "a", Threads: -1}).Validate(); err == nil {
		t.Error("negative threads validated")
	}
	if err := (Manifest{Binary: "a"}).Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestStartFigure6aActivity(t *testing.T) {
	m, _, inst := boot(t, 64, Manifest{})
	s := inst.StartupCounters
	// Figure 6a: ~300 ECALLs, ~1000 OCALLs, ~1000 AEX exits during
	// initialization (plus the EINIT entry and eviction storm).
	if got := s.Get(perf.ECalls); got < initECalls || got > initECalls+10 {
		t.Errorf("startup ECALLs = %d, want ~%d", got, initECalls)
	}
	if got := s.Get(perf.OCalls); got < initOCalls || got > initOCalls+10 {
		t.Errorf("startup OCALLs = %d, want ~%d", got, initOCalls)
	}
	// Init interrupts plus the loader's post-measurement faults give
	// the paper's ~1000 AEX exits.
	if got := s.Get(perf.AEXs); got < 990 || got > 1010 {
		t.Errorf("startup AEXs = %d, want ~1000", got)
	}
	if got := s.Get(perf.EPCLoadBacks); got < loaderPages/2 {
		t.Errorf("startup load-backs = %d, want the loader working set (~%d)", got, loaderPages)
	}
	// The enclave is LibOSEnclaveFactor x EPC; measurement loads all
	// of it, evicting nearly everything.
	enclavePages := uint64(sgx.LibOSEnclaveFactor * 64)
	evic := s.Get(perf.EPCEvictions)
	if evic < enclavePages*8/10 {
		t.Errorf("startup evictions = %d, want most of %d enclave pages", evic, enclavePages)
	}
	if inst.StartupCycles == 0 {
		t.Error("no startup time recorded")
	}
	if !inst.Env.Main.InEnclave() {
		t.Error("application does not run inside the enclave after boot")
	}
	_ = m
}

func TestMissingManifestFile(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	fs := osal.NewFS()
	_, err := Start(m, fs, Manifest{Binary: "app", Files: []string{"absent"}})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("Start with missing trusted file: %v", err)
	}
}

func TestTrustedFileVerification(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	fs := osal.NewFS()
	fs.Create("input", []byte("trusted data"))
	inst, err := Start(m, fs, Manifest{Binary: "app", Files: []string{"input"}})
	if err != nil {
		t.Fatal(err)
	}
	sh := inst.FS()
	if _, err := sh.Open(inst.Env.Main, "input"); err != nil {
		t.Fatalf("verified open failed: %v", err)
	}
	// Second open uses the cached verification.
	if _, err := sh.Open(inst.Env.Main, "input"); err != nil {
		t.Fatalf("re-open failed: %v", err)
	}
}

func TestTamperedTrustedFileRejected(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	fs := osal.NewFS()
	fs.Create("input", []byte("trusted data"))
	inst, err := Start(m, fs, Manifest{Binary: "app", Files: []string{"input"}})
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("input", []byte("evil data!!!")) // tamper after manifest processing
	if _, err := inst.FS().Open(inst.Env.Main, "input"); err == nil {
		t.Fatal("tampered trusted file opened")
	}
}

func TestAllowedFilePassthrough(t *testing.T) {
	_, fs, inst := boot(t, 64, Manifest{})
	fs.Create("untrusted", []byte("whatever"))
	if _, err := inst.FS().Open(inst.Env.Main, "untrusted"); err != nil {
		t.Fatalf("allowed file open failed: %v", err)
	}
}

func TestShimWriteCreatesPlaintext(t *testing.T) {
	m, fs, inst := boot(t, 64, Manifest{})
	tr := inst.Env.Main
	buf := m.AllocUntrusted(64, 8)
	tr.Write(buf, []byte("plain!!!"))
	h, err := inst.FS().CreateFile(tr, "out")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(tr, buf, 0, 8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fs.Raw("out"), []byte("plain!!!")) {
		t.Error("shim (non-PF) output is not plaintext on the untrusted FS")
	}
}

func TestProtectedFileRoundTrip(t *testing.T) {
	m, _, inst := boot(t, 64, Manifest{ProtectedFiles: true})
	tr := inst.Env.Main
	pf := inst.FS()

	data := make([]byte, 3*pfChunk+100) // partial trailing chunk
	for i := range data {
		data[i] = byte(i * 13)
	}
	buf := m.AllocUntrusted(uint64(len(data)), 8)
	tr.Write(buf, data)

	h, err := pf.CreateFile(tr, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(tr, buf, 0, len(data)); err != nil {
		t.Fatal(err)
	}
	if h.Size() != len(data) {
		t.Errorf("Size = %d, want %d", h.Size(), len(data))
	}
	if err := h.Close(tr); err != nil {
		t.Fatal(err)
	}

	// Read it back through a fresh handle.
	h2, err := pf.Open(tr, "secret")
	if err != nil {
		t.Fatal(err)
	}
	out := m.AllocUntrusted(uint64(len(data)), 8)
	n, err := h2.ReadAt(tr, out, 0, len(data))
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	tr.Read(out, got)
	if !bytes.Equal(got, data) {
		t.Fatal("protected file round trip corrupted data")
	}
}

func TestProtectedFileIsEncryptedOnDisk(t *testing.T) {
	m, fs, inst := boot(t, 64, Manifest{ProtectedFiles: true})
	tr := inst.Env.Main
	plain := bytes.Repeat([]byte("SECRET42"), pfChunk/8)
	buf := m.AllocUntrusted(pfChunk, 8)
	tr.Write(buf, plain)
	h, err := inst.FS().CreateFile(tr, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(tr, buf, 0, pfChunk); err != nil {
		t.Fatal(err)
	}
	raw := fs.Raw("secret")
	if bytes.Contains(raw, []byte("SECRET42")) {
		t.Fatal("protected file leaks plaintext to the untrusted FS")
	}
	if len(raw) != pfSealed {
		t.Errorf("sealed chunk size = %d, want %d", len(raw), pfSealed)
	}
}

func TestProtectedFileTamperDetected(t *testing.T) {
	m, fs, inst := boot(t, 64, Manifest{ProtectedFiles: true})
	tr := inst.Env.Main
	buf := m.AllocUntrusted(pfChunk, 8)
	h, err := inst.FS().CreateFile(tr, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(tr, buf, 0, pfChunk); err != nil {
		t.Fatal(err)
	}
	raw := fs.Raw("secret")
	raw[100] ^= 1
	if _, err := h.ReadAt(tr, buf, 0, pfChunk); err == nil {
		t.Fatal("tampered protected chunk read back without error")
	}
}

func TestProtectedFileSparseReadAndRMW(t *testing.T) {
	m, _, inst := boot(t, 64, Manifest{ProtectedFiles: true})
	tr := inst.Env.Main
	pf := inst.FS()
	buf := m.AllocUntrusted(pfChunk, 8)
	tr.Write(buf, bytes.Repeat([]byte{0xEE}, 16))

	h, err := pf.CreateFile(tr, "sparse")
	if err != nil {
		t.Fatal(err)
	}
	// Write 16 bytes in the middle of chunk 2 (read-modify-write of
	// a never-written chunk).
	off := 2*pfChunk + 50
	if _, err := h.WriteAt(tr, buf, off, 16); err != nil {
		t.Fatal(err)
	}
	// The hole before it reads as zeros.
	out := m.AllocUntrusted(pfChunk, 8)
	if _, err := h.ReadAt(tr, out, 0, 64); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	tr.Read(out, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("sparse hole is not zero")
		}
	}
	// The written range reads back.
	if _, err := h.ReadAt(tr, out, off, 16); err != nil {
		t.Fatal(err)
	}
	tr.Read(out, got[:16])
	for _, b := range got[:16] {
		if b != 0xEE {
			t.Fatal("RMW lost the written bytes")
		}
	}
}

func TestProtectedFileOpenMissing(t *testing.T) {
	_, _, inst := boot(t, 64, Manifest{ProtectedFiles: true})
	if _, err := inst.FS().Open(inst.Env.Main, "nope"); err == nil {
		t.Fatal("opened a nonexistent protected file")
	}
}

func TestProtectedFileCostsMoreThanShim(t *testing.T) {
	cost := func(pf bool) uint64 {
		m, _, inst := boot(t, 64, Manifest{ProtectedFiles: pf})
		tr := inst.Env.Main
		buf := m.AllocUntrusted(pfChunk, 8)
		before := tr.Clock.Cycles()
		h, err := inst.FS().CreateFile(tr, "f")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := h.WriteAt(tr, buf, i*pfChunk, pfChunk); err != nil {
				t.Fatal(err)
			}
			if _, err := h.ReadAt(tr, buf, i*pfChunk, pfChunk); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Clock.Cycles() - before
	}
	plain, protected := cost(false), cost(true)
	if protected <= plain {
		t.Errorf("PF I/O (%d cycles) not costlier than plain shim (%d)", protected, plain)
	}
}

func TestLoaderPagesHavePseudoContentHeapIsZero(t *testing.T) {
	m, _, inst := boot(t, 64, Manifest{})
	tr := inst.Env.Main
	// Heap memory allocated by the app must read as zeros even
	// though the pages were measured at launch.
	addr, err := inst.Env.Alloc(mem.PageSize, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ReadU64(addr) != 0 || tr.ReadU64(addr+mem.PageSize-8) != 0 {
		t.Error("heap page is not zero after launch measurement")
	}
	_ = m
}
