package libos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"sgxgauge/internal/osal"
	"sgxgauge/internal/sgx"
)

// ShimFS is the LibOS's default filesystem view: system calls are
// transparently captured, trusted input files are hash-verified on
// first open, and data moves through OCALLs in plaintext ("a naive
// implementation will still write the data in plain text to the file
// system", paper Appendix E).
type ShimFS struct {
	inst *Instance
}

// Open opens a file, verifying its manifest hash if it is listed as a
// trusted input. Files absent from the manifest pass through as
// "allowed" (untrusted) files.
func (s *ShimFS) Open(t *sgx.Thread, name string) (osal.Handle, error) {
	if _, trusted := s.inst.fileHashes[name]; trusted {
		if err := s.inst.verifyOnOpen(t, name); err != nil {
			return nil, err
		}
	}
	return s.inst.fs.Open(t, name)
}

// CreateFile creates an allowed (untrusted, plaintext) output file.
func (s *ShimFS) CreateFile(t *sgx.Thread, name string) (osal.Handle, error) {
	return s.inst.fs.CreateFile(t, name)
}

// Protected file system geometry: data is stored in fixed-size sealed
// chunks of pfChunk plaintext bytes each.
const (
	pfChunk  = 4096
	pfSealed = pfChunk + 48 // mee seal overhead: 16-byte IV + 32-byte MAC
	// pfCryptoChunkCycles is the in-enclave AES-GCM-style cost of
	// sealing or unsealing one chunk (~0.5 cycles/byte with AES-NI).
	pfCryptoChunkCycles = pfChunk / 2
	// pfFlushBatch is how many dirty chunks the PF flusher handles
	// per internal ECALL (drives the ECALL growth of Figure 10c).
	pfFlushBatch = 16
)

// ProtectedFS is the transparently-encrypting protected file system
// (Graphene's "PF" mode, paper Appendix E). File contents on the
// untrusted filesystem are sealed per 4 KiB chunk; reads unseal and
// verify, writes seal. The extra OCALLs, ECALLs and crypto work are
// what make an I/O-intensive application "suffer by up to 98%".
type ProtectedFS struct {
	inst *Instance
}

// pfContext derives the unique seal context for a chunk of a file.
func pfContext(name string, chunk int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(chunk))
	h.Write(b[:])
	return h.Sum64()
}

// isHole reports whether a sealed chunk's IV region is all zero,
// marking a chunk the PF layer never wrote (a valid seal always embeds
// the nonzero enclave ID there).
func isHole(iv []byte) bool {
	for _, b := range iv {
		if b != 0 {
			return false
		}
	}
	return true
}

// pfMetaName is where the PF layer records a file's logical size.
func pfMetaName(name string) string { return name + ".pfmeta" }

// Open opens an existing protected file.
func (p *ProtectedFS) Open(t *sgx.Thread, name string) (osal.Handle, error) {
	meta := p.inst.fs.Raw(pfMetaName(name))
	if meta == nil {
		t.Syscall(0)
		return nil, fmt.Errorf("libos: %q is not a protected file", name)
	}
	size, err := p.readMeta(t, name)
	if err != nil {
		return nil, err
	}
	t.Syscall(uint64(len(name)))
	return &pfHandle{p: p, name: name, size: size}, nil
}

// CreateFile creates (or truncates) a protected file.
func (p *ProtectedFS) CreateFile(t *sgx.Thread, name string) (osal.Handle, error) {
	t.Syscall(uint64(len(name)))
	p.inst.fs.Create(name, nil)
	h := &pfHandle{p: p, name: name, size: 0}
	if err := h.writeMeta(t); err != nil {
		return nil, err
	}
	return h, nil
}

// readMeta loads and unseals the logical-size record.
func (p *ProtectedFS) readMeta(t *sgx.Thread, name string) (int, error) {
	raw := p.inst.fs.Raw(pfMetaName(name))
	t.Syscall(uint64(len(raw)))
	plain, err := p.inst.Env.M.Engine.Unseal(p.inst.Env.Enclave.ID, pfContext(name, -1), raw)
	if err != nil {
		return 0, fmt.Errorf("libos: protected-file metadata of %q: %w", name, err)
	}
	t.Compute(uint64(len(plain)))
	return int(binary.LittleEndian.Uint64(plain)), nil
}

type pfHandle struct {
	p         *ProtectedFS
	name      string
	size      int
	dirty     int // chunks written since the last flusher commit
	metaOps   int // chunks read since the last Merkle-node fetch
	metaDirty int // size growths since the last metadata commit
	closed    bool
}

func (h *pfHandle) Size() int { return h.size }

func (h *pfHandle) writeMeta(t *sgx.Thread) error {
	var plain [8]byte
	binary.LittleEndian.PutUint64(plain[:], uint64(h.size))
	sealed := h.p.inst.Env.M.Engine.Seal(h.p.inst.Env.Enclave.ID, pfContext(h.name, -1), plain[:])
	t.Compute(uint64(len(plain)))
	t.Syscall(uint64(len(sealed)))
	h.p.inst.fs.Create(pfMetaName(h.name), sealed)
	return nil
}

// readChunk unseals chunk ci, returning nil for never-written chunks.
// The caller is responsible for charging the underlying data fetch
// (ReadAt batches one OCALL per application read); readChunk charges
// the per-chunk authentication work.
func (h *pfHandle) readChunk(t *sgx.Thread, ci int) ([]byte, error) {
	raw := h.p.inst.fs.Raw(h.name)
	lo := ci * pfSealed
	if lo >= len(raw) {
		return nil, nil
	}
	hi := lo + pfSealed
	if hi > len(raw) {
		return nil, fmt.Errorf("libos: protected file %q: truncated chunk %d", h.name, ci)
	}
	if isHole(raw[lo : lo+16]) {
		// Never-written chunk inside a sparsely-grown file: the
		// sealed IV region is still zero.
		return nil, nil
	}
	plain, err := h.p.inst.Env.M.Engine.Unseal(h.p.inst.Env.Enclave.ID, pfContext(h.name, ci), raw[lo:hi])
	if err != nil {
		return nil, fmt.Errorf("libos: protected file %q chunk %d: %w", h.name, ci, err)
	}
	t.Compute(pfCryptoChunkCycles)
	h.metaOps++
	if h.metaOps >= pfFlushBatch {
		h.metaOps = 0
		// Merkle-tree nodes are cached in enclave memory; refreshing
		// one is shim-internal work.
		t.SyscallInternal(64)
	}
	return plain, nil
}

// writeChunk seals and stores chunk ci. As with readChunk, the bulk
// data syscall is batched by the caller.
func (h *pfHandle) writeChunk(t *sgx.Thread, ci int, plain []byte) {
	sealed := h.p.inst.Env.M.Engine.Seal(h.p.inst.Env.Enclave.ID, pfContext(h.name, ci), plain)
	t.Compute(pfCryptoChunkCycles)
	h.p.inst.fs.PatchRaw(h.name, ci*pfSealed, sealed)
	h.dirty++
	if h.dirty >= pfFlushBatch {
		h.dirty = 0
		t.Syscall(64) // Merkle-tree node update
		// The PF flusher re-enters the enclave to commit the
		// updated tree root (Figure 10c's ECALL growth).
		t.RuntimeECall(func() {})
	}
}

func (h *pfHandle) ReadAt(t *sgx.Thread, addr uint64, off, n int) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("libos: read on closed protected file %q", h.name)
	}
	if off >= h.size {
		t.Syscall(0)
		return 0, nil
	}
	if off+n > h.size {
		n = h.size - off
	}
	// One OCALL fetches the sealed extent covering the whole read.
	t.Syscall(uint64((n/pfChunk + 1) * pfSealed))
	done := 0
	for done < n {
		ci := (off + done) / pfChunk
		chunkOff := (off + done) % pfChunk
		take := pfChunk - chunkOff
		if take > n-done {
			take = n - done
		}
		plain, err := h.readChunk(t, ci)
		if err != nil {
			return done, err
		}
		if plain == nil {
			plain = make([]byte, pfChunk) // sparse hole reads as zeros
		}
		t.Write(addr+uint64(done), plain[chunkOff:chunkOff+take])
		done += take
	}
	return done, nil
}

func (h *pfHandle) WriteAt(t *sgx.Thread, addr uint64, off, n int) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("libos: write on closed protected file %q", h.name)
	}
	// One OCALL stores the sealed extent covering the whole write.
	t.Syscall(uint64((n/pfChunk + 1) * pfSealed))
	done := 0
	for done < n {
		ci := (off + done) / pfChunk
		chunkOff := (off + done) % pfChunk
		take := pfChunk - chunkOff
		if take > n-done {
			take = n - done
		}
		var plain []byte
		if chunkOff == 0 && take == pfChunk {
			plain = make([]byte, pfChunk) // full overwrite, no RMW
		} else {
			existing, err := h.readChunk(t, ci)
			if err != nil {
				return done, err
			}
			if existing == nil {
				existing = make([]byte, pfChunk)
			}
			plain = existing
		}
		t.Read(addr+uint64(done), plain[chunkOff:chunkOff+take])
		h.writeChunk(t, ci, plain)
		done += take
	}
	if off+n > h.size {
		h.size = off + n
		h.metaDirty++
		// The size record is committed lazily (every few growth
		// steps and at close), like a buffered inode update.
		if h.metaDirty >= pfFlushBatch {
			h.metaDirty = 0
			if err := h.writeMeta(t); err != nil {
				return done, err
			}
		}
	}
	return n, nil
}

func (h *pfHandle) Close(t *sgx.Thread) error {
	if h.closed {
		return fmt.Errorf("libos: double close of protected file %q", h.name)
	}
	h.closed = true
	if err := h.writeMeta(t); err != nil {
		return err
	}
	t.Syscall(0)
	return nil
}
