package libos

import (
	"crypto/subtle"
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

// Init-phase transition counts for an empty workload, calibrated to
// Figure 6a of the paper: "GrapheneSGX performs ~300 ECALLs, ~1000
// OCALLs, and ~1000 AEX exits" while initializing.
const (
	initECalls = 300
	initOCalls = 1000
	// initAEXs covers the interrupt-driven exits during init; the
	// loader's post-measurement working-set faults contribute the
	// remaining loaderPages AEXs, totalling ~1000.
	initAEXs = 1000 - loaderPages
)

// loaderPages is the LibOS's own in-enclave footprint (runtime code,
// loader state); the rest of the measured enclave is application heap.
const loaderPages = 128

// Instance is one running LibOS (one enclave hosting one unmodified
// application).
type Instance struct {
	// Env is the LibOS-mode environment the application runs in.
	Env *sgx.Env
	// Manifest is the effective (defaulted) manifest.
	Manifest Manifest

	fs         *osal.FS
	fileHashes map[string][32]byte
	verified   map[string]bool

	// StartupCycles is the main-thread cycle cost of initializing
	// the LibOS, which the paper excludes from workload run time
	// (Appendix D).
	StartupCycles uint64
	// StartupCounters snapshots the machine counters right after
	// initialization; harnesses measure workloads from this baseline.
	StartupCounters perf.Snapshot
}

// Start boots a LibOS instance on the machine: it processes the
// manifest (hashing the input files), builds and measures the full
// enclave, performs the loader's init-phase transitions, and leaves
// the application permanently inside the enclave.
func Start(m *sgx.Machine, fs *osal.FS, man Manifest) (*Instance, error) {
	return StartWithTimeline(m, fs, man, 0)
}

// StartWithTimeline is Start with EPC activity sampling enabled from
// before the enclave build, so the launch-time eviction storm is
// captured (Figure 9). timelineEvery = 0 disables sampling.
func StartWithTimeline(m *sgx.Machine, fs *osal.FS, man Manifest, timelineEvery uint64) (*Instance, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	man = man.withDefaults(m.Config().EPCPages)

	inst := &Instance{
		Manifest:   man,
		fs:         fs,
		fileHashes: make(map[string][32]byte, len(man.Files)),
		verified:   make(map[string]bool, len(man.Files)),
	}
	// Manifest processing: hash every trusted input file.
	for _, name := range man.Files {
		data := fs.Raw(name)
		if data == nil {
			return nil, fmt.Errorf("libos: manifest file %q not found", name)
		}
		inst.fileHashes[name] = hashFile(data)
	}

	env := m.NewEnv(sgx.LibOS)
	inst.Env = env
	if timelineEvery > 0 {
		m.EPC.EnableTimeline(&env.Main.Clock, timelineEvery)
	}

	// Build the enclave. Graphene EADDs the entire declared enclave
	// so SGX can measure it, producing the launch-time eviction storm
	// of Figure 6a when the enclave exceeds the EPC — but only the
	// loader's own footprint is reserved; the rest becomes the
	// application heap.
	if _, err := env.LaunchEnclaveReserve(man.enclaveImagePages(), loaderPages, man.EnclaveSizePages); err != nil {
		return nil, fmt.Errorf("libos: building enclave: %w", err)
	}

	// Loader init: the ECALL/OCALL/AEX activity Figure 6a reports for
	// an empty workload. The OCALLs load libraries and set up the
	// environment; the AEXs are interrupts taken during the long
	// build.
	t := env.Main
	for i := 0; i < initECalls; i++ {
		t.RuntimeECall(func() {})
	}
	t.RuntimeECall(func() {
		for i := 0; i < initOCalls; i++ {
			t.RuntimeOCall(func() {
				t.Clock.Advance(m.Costs.SyscallDirect)
			})
		}
		for i := 0; i < initAEXs; i++ {
			t.RuntimeAEX()
		}
	})

	// From here on the unmodified application executes inside the
	// enclave.
	env.EnterPermanently()

	// The runtime touches its own working set, which the measurement
	// sweep evicted — the small number of pages "loaded back" out of
	// the ~1M evicted that Figure 6a reports.
	for i := 0; i < loaderPages; i++ {
		t.ReadU64(env.Enclave.Base + uint64(i)*mem.PageSize)
	}

	inst.StartupCycles = env.Elapsed()
	inst.StartupCounters = env.Snapshot()
	return inst, nil
}

// VerifyOnOpen checks a trusted file's hash the first time it is
// opened, charging the in-enclave hashing cost. It returns an error
// when the file was tampered with after manifest processing, or when
// the file is not listed in the manifest at all.
func (inst *Instance) verifyOnOpen(t *sgx.Thread, name string) error {
	want, ok := inst.fileHashes[name]
	if !ok {
		return fmt.Errorf("libos: %q is not a trusted file in the manifest", name)
	}
	if inst.verified[name] {
		return nil
	}
	data := inst.fs.Raw(name)
	got := hashFile(data)
	// Hashing happens inside the enclave over data fetched through
	// OCALLs; charge ~1 cycle/byte of SHA-256 work plus the fetches.
	t.Compute(uint64(len(data)))
	t.Syscall(uint64(len(data)))
	if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
		return fmt.Errorf("libos: hash mismatch for trusted file %q", name)
	}
	inst.verified[name] = true
	return nil
}

// FS returns the filesystem view the application should use: the
// shimmed (and, if configured, protected) filesystem.
func (inst *Instance) FS() osal.FileSystem {
	if inst.Manifest.ProtectedFiles {
		return &ProtectedFS{inst: inst}
	}
	return &ShimFS{inst: inst}
}

// ShimFS returns the plaintext trusted/allowed-file view regardless of
// the ProtectedFiles setting; a Graphene-style manifest mounts trusted
// input files and protected files side by side.
func (inst *Instance) ShimFS() osal.FileSystem { return &ShimFS{inst: inst} }
