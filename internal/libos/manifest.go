// Package libos implements the GrapheneSGX-like library operating
// system of the paper's LibOS mode: a manifest-driven loader that
// builds a large enclave, measures it, and then runs an unmodified
// application inside it, intercepting its system calls and bridging
// them to the untrusted OS through OCALLs (paper §2.4, §4.4).
package libos

import (
	"crypto/sha256"
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
)

// Manifest describes one application to the LibOS, mirroring the
// Graphene manifest of paper §4.4: "the binary's location, list of
// libraries required, and the required input files", plus enclave
// size, thread count and internal memory.
type Manifest struct {
	// Binary is the application binary path (informational).
	Binary string
	// Libs lists required shared libraries (informational).
	Libs []string
	// Files lists the input files whose hashes the LibOS computes at
	// manifest-processing time and verifies on first open.
	Files []string
	// EnclaveSizePages is the declared enclave size. Zero selects
	// the paper's setting: LibOSEnclaveFactor x the EPC size (the
	// 4 GB enclave of Table 3).
	EnclaveSizePages int
	// Threads is the TCS count (Table 3 uses 16).
	Threads int
	// InternalMemPages is the LibOS-internal memory (Table 3: 64 MB,
	// i.e. ~70% of the EPC); zero selects that default.
	InternalMemPages int
	// ProtectedFiles enables the transparently-encrypting protected
	// file system (paper Appendix E).
	ProtectedFiles bool
}

func (m Manifest) withDefaults(epcPages int) Manifest {
	if m.EnclaveSizePages == 0 {
		m.EnclaveSizePages = sgx.LibOSEnclaveFactor * epcPages
	}
	if m.Threads == 0 {
		m.Threads = 16
	}
	if m.InternalMemPages == 0 {
		m.InternalMemPages = epcPages * 64 / 92 // 64 MB against a 92 MB EPC
	}
	return m
}

// Validate reports manifest errors a Graphene-style loader would
// reject.
func (m Manifest) Validate() error {
	if m.Binary == "" {
		return fmt.Errorf("libos: manifest has no binary")
	}
	if m.EnclaveSizePages < 0 || m.InternalMemPages < 0 || m.Threads < 0 {
		return fmt.Errorf("libos: manifest has negative sizes")
	}
	return nil
}

// hashFile computes the measurement of one input file recorded at
// manifest-processing time ("GrapheneSGX then processes this file and
// calculates the hash of all the required input files, which are then
// verified at the time of the execution", §4.4).
func hashFile(data []byte) [32]byte { return sha256.Sum256(data) }

// enclaveImagePages returns how many pages the loader EADDs at launch.
// Graphene loads the entire declared enclave (heap included), which is
// what makes launching a 4 GB enclave cause ~1M EPC evictions through
// a 92 MB EPC (paper §5.4.1).
func (m Manifest) enclaveImagePages() int { return m.EnclaveSizePages }

// enclaveBytes returns the declared enclave size in bytes.
func (m Manifest) enclaveBytes() uint64 {
	return uint64(m.EnclaveSizePages) * mem.PageSize
}
