package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := NewLLC(64*1024, 16)
	if c.Ways() != 16 {
		t.Errorf("ways = %d", c.Ways())
	}
	if c.SizeBytes() > 64*1024 || c.SizeBytes() < 32*1024 {
		t.Errorf("size = %d, want close to 64K", c.SizeBytes())
	}
	if s := c.Sets(); s&(s-1) != 0 {
		t.Errorf("sets = %d is not a power of two", s)
	}
}

func TestInvalidWaysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLLC(_, 0) did not panic")
		}
	}()
	NewLLC(1024, 0)
}

func TestMissThenHit(t *testing.T) {
	c := NewLLC(64*1024, 8)
	if c.Access(12345) {
		t.Fatal("first access hit")
	}
	if !c.Access(12345) {
		t.Fatal("second access missed")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestSetConflictEviction(t *testing.T) {
	c := NewLLC(8*64, 2) // 4 sets x 2 ways
	sets := uint64(c.Sets())
	// Fill one set beyond capacity: lines 0, sets, 2*sets... map to
	// set 0.
	c.Access(0)
	c.Access(sets)
	c.Access(2 * sets) // evicts line 0 (round robin)
	if c.Access(0) {
		t.Error("evicted line still hit")
	}
}

func TestFlush(t *testing.T) {
	c := NewLLC(64*1024, 8)
	for i := uint64(0); i < 100; i++ {
		c.Access(i)
	}
	c.Flush()
	if c.Access(5) {
		t.Error("hit after flush")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := NewLLC(64*1024, 8)
	for i := uint64(0); i < 64; i++ {
		c.Access(1000 + i)
	}
	c.InvalidateRange(1000, 64)
	for i := uint64(0); i < 64; i++ {
		if c.Access(1000 + i) {
			t.Fatalf("line %d survived InvalidateRange", 1000+i)
		}
	}
}

func TestInvalidateRangeLeavesOthers(t *testing.T) {
	c := NewLLC(64*1024, 8)
	c.Access(1)
	c.Access(100000)
	c.InvalidateRange(100000, 1)
	if !c.Access(1) {
		t.Error("unrelated line was invalidated")
	}
}

func TestEvictEveryNth(t *testing.T) {
	c := NewLLC(64*1024, 8)
	for i := uint64(0); i < 512; i++ {
		c.Access(i)
	}
	before := hitCount(c, 512)
	c.EvictEveryNth(8, 0)
	after := hitCount(c, 512)
	if after >= before {
		t.Errorf("pollution did not evict anything: %d -> %d", before, after)
	}
	// Roughly 1/8 of lines should be gone (hitCount re-installs, so
	// just check a meaningful drop bounded by ~1/4).
	if before-after > 512/4 {
		t.Errorf("pollution too aggressive: lost %d of %d", before-after, before)
	}
	c.EvictEveryNth(0, 0) // n=0 is a no-op, must not panic or hang
}

func hitCount(c *LLC, n uint64) int {
	hits := 0
	for i := uint64(0); i < n; i++ {
		if c.Access(i) {
			hits++
		}
	}
	return hits
}

// TestAccessRunMatchesAccessLoop drives two identical caches with a
// random interleaving of runs — one through AccessRun, the other
// through the equivalent Access loop — and demands identical hit and
// miss counts per run plus identical full state (tags, round-robin
// pointers, `last` shortcut) throughout. AccessRun's contract is
// exactly "Access in a loop"; this pins it against the bulk path's
// unrolled internals.
func TestAccessRunMatchesAccessLoop(t *testing.T) {
	a := NewLLC(16*1024, 4) // small: plenty of conflict evictions
	b := NewLLC(16*1024, 4)
	rng := uint64(0x1234abcd)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for step := 0; step < 20000; step++ {
		line := next(4 * uint64(a.Sets()))
		n := next(130) // runs up to two pages of lines, incl. n == 0
		gh, gm := a.AccessRun(line, n)
		var wh, wm uint64
		for i := uint64(0); i < n; i++ {
			if b.Access(line + i) {
				wh++
			} else {
				wm++
			}
		}
		if gh != wh || gm != wm {
			t.Fatalf("step %d: AccessRun(%d, %d) = %d hits %d misses, Access loop %d/%d",
				step, line, n, gh, gm, wh, wm)
		}
		if a.last != b.last {
			t.Fatalf("step %d: last = %d want %d", step, a.last, b.last)
		}
		ah, am := a.Stats()
		bh, bm := b.Stats()
		if ah != bh || am != bm {
			t.Fatalf("step %d: stats %d/%d want %d/%d", step, ah, am, bh, bm)
		}
		for i := range a.tags {
			if a.tags[i] != b.tags[i] {
				t.Fatalf("step %d: tags[%d] = %d want %d", step, i, a.tags[i], b.tags[i])
			}
		}
		for i := range a.next {
			if a.next[i] != b.next[i] {
				t.Fatalf("step %d: next[%d] = %d want %d", step, i, a.next[i], b.next[i])
			}
		}
	}
}

func TestRepeatedAccessAlwaysHitsProperty(t *testing.T) {
	c := NewLLC(256*1024, 16)
	f := func(line uint64) bool {
		c.Access(line)
		return c.Access(line) // immediate re-access must hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetWithinCapacityHits(t *testing.T) {
	c := NewLLC(64*1024, 8)
	lines := uint64(c.Sets()) // one line per set: no conflicts
	for pass := 0; pass < 3; pass++ {
		miss := 0
		for i := uint64(0); i < lines; i++ {
			if !c.Access(i) {
				miss++
			}
		}
		if pass > 0 && miss != 0 {
			t.Fatalf("pass %d: %d misses for conflict-free working set", pass, miss)
		}
	}
}
