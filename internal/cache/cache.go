// Package cache implements the set-associative last-level cache model
// of the simulated machine.
//
// The model tracks tags only (data lives in the page frames); its job
// is to classify each memory access as an LLC hit or miss so the cycle
// model can charge DRAM latency — and, for EPC-resident lines, the
// additional MEE encryption/decryption latency (paper §2.2: "data is
// decrypted when brought in to the LLC upon a CPU request").
package cache

import "fmt"

// LLC is a set-associative cache of line tags with round-robin
// replacement within a set. It is not safe for concurrent use; the
// machine serializes simulated threads.
type LLC struct {
	sets    int
	ways    int
	setMask uint64
	setBits uint
	// tags holds, per slot, the line's set-relative tag (line with the
	// set-index bits shifted out) biased by 1; 0 means invalid. Within
	// a set that remainder identifies the line uniquely, and 32 bits
	// cover any simulated address below 2^(38+log2 sets) bytes — far
	// beyond the simulator's address space. Packing 16 ways into one
	// 64-byte cache line keeps the way scan to a single real memory
	// touch.
	tags []uint32 // sets*ways entries; 0 means invalid
	next []uint8  // per-set round-robin pointer
	// mru is the way of each set's most recent hit or install. It is
	// probed before the way scan; a pure lookup-order hint (like the
	// `last` shortcut) that never changes what Access returns or
	// which victim a miss picks.
	mru []uint8
	// last is the biased tag (line+1) of the most recent Access, or 0.
	// A repeat of the same line with no intervening Access is always a
	// hit — hits never move tags, and the previous Access left the
	// line installed — so it skips the way scan. Any bulk invalidation
	// clears it.
	last    uint64
	hits    uint64
	misses  uint64
}

// NewLLC builds a cache of totalBytes capacity with the given
// associativity and 64-byte lines. totalBytes is rounded down to a
// power-of-two set count; the resulting geometry is available through
// Sets and Ways. It panics if the geometry is degenerate.
func NewLLC(totalBytes int, ways int) *LLC {
	if ways <= 0 || ways > 255 {
		panic(fmt.Sprintf("cache: invalid ways %d", ways))
	}
	lines := totalBytes / 64
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	return &LLC{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		setBits: setBits,
		tags:    make([]uint32, sets*ways),
		next:    make([]uint8, sets),
		mru:     make([]uint8, sets),
	}
}

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *LLC) Ways() int { return c.ways }

// SizeBytes returns the modeled capacity in bytes.
func (c *LLC) SizeBytes() int { return c.sets * c.ways * 64 }

// Access looks up the cache line containing lineAddr (a line number,
// i.e. byte address / 64) and returns true on a hit. On a miss the
// line is installed, evicting the round-robin victim of its set.
func (c *LLC) Access(line uint64) bool {
	// Tag 0 marks an invalid slot, so bias stored tags by 1.
	tag := line + 1
	if tag == c.last {
		c.hits++
		return true
	}
	c.last = tag
	set := int(line & c.setMask)
	base := set * c.ways
	st := uint32(line>>c.setBits) + 1
	w := c.tags[base : base+c.ways]
	if w[c.mru[set]] == st {
		c.hits++
		return true
	}
	for i, t := range w {
		if t == st {
			c.hits++
			c.mru[set] = uint8(i)
			return true
		}
	}
	c.misses++
	v := int(c.next[set])
	w[v] = st
	nv := v + 1
	if nv == c.ways {
		nv = 0
	}
	c.next[set] = uint8(nv)
	c.mru[set] = uint8(v)
	return false
}

// NoteStreakHits records n hits that the caller proved without a
// lookup: immediate repeats of the most recently accessed line. Such
// repeats always take the `last` shortcut in Access — a hit that
// reads no tags and moves no state — so batching them into one
// counter add leaves the cache's state and statistics exactly as n
// Access calls would have.
func (c *LLC) NoteStreakHits(n uint64) { c.hits += n }

// AccessRun performs Access on n consecutive lines starting at line
// and returns how many hit and how many missed. It is the bulk
// equivalent of calling Access in a loop and leaves identical cache
// state and statistics; the machine's fast path uses it to charge a
// whole intra-page run of lines in one call.
//
// The body is Access unrolled across the run with the bookkeeping
// kept in locals: only the first line can take the `last` shortcut
// (consecutive lines never repeat), and the final `last` is the run's
// last line — exactly what n sequential Access calls leave behind.
func (c *LLC) AccessRun(line uint64, n uint64) (hits, misses uint64) {
	if n == 0 {
		return 0, 0
	}
	i := uint64(0)
	if line+1 == c.last {
		hits++
		i++
	}
	for ; i < n; i++ {
		ln := line + i
		set := int(ln & c.setMask)
		base := set * c.ways
		st := uint32(ln>>c.setBits) + 1
		w := c.tags[base : base+c.ways]
		if w[c.mru[set]] == st {
			hits++
			continue
		}
		found := false
		for k, t := range w {
			if t == st {
				c.mru[set] = uint8(k)
				hits++
				found = true
				break
			}
		}
		if found {
			continue
		}
		misses++
		v := int(c.next[set])
		w[v] = st
		nv := v + 1
		if nv == c.ways {
			nv = 0
		}
		c.next[set] = uint8(nv)
		c.mru[set] = uint8(v)
	}
	c.last = line + n // biased tag of the run's final line
	c.hits += hits
	c.misses += misses
	return hits, misses
}

// InvalidateRange removes n consecutive lines starting at line from
// the cache (used when an EPC page is encrypted out to DRAM).
func (c *LLC) InvalidateRange(line uint64, n uint64) {
	c.last = 0
	for i := uint64(0); i < n; i++ {
		ln := line + i
		st := uint32(ln>>c.setBits) + 1
		base := int(ln&c.setMask) * c.ways
		w := c.tags[base : base+c.ways]
		for k, t := range w {
			if t == st {
				w[k] = 0
				break
			}
		}
	}
}

// EvictEveryNth invalidates every n-th line slot, starting at phase
// mod n. It models the cache pollution of one enclave transition: the
// kernel/microcode path displaces roughly 1/n of the cache, spread
// across sets. The rotating phase keeps repeated transitions from
// always sparing the same slots.
func (c *LLC) EvictEveryNth(n uint64, phase uint64) {
	if n == 0 {
		return
	}
	c.last = 0
	for i := int(phase % n); i < len(c.tags); i += int(n) {
		c.tags[i] = 0
	}
}

// Flush invalidates the entire cache.
func (c *LLC) Flush() {
	c.last = 0
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.next {
		c.next[i] = 0
	}
}

// Stats returns cumulative hits and misses since construction.
func (c *LLC) Stats() (hits, misses uint64) { return c.hits, c.misses }
