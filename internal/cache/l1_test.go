package cache

import "testing"

func TestL1MissThenHit(t *testing.T) {
	c := NewL1(4 * 1024)
	if c.Access(77) {
		t.Fatal("cold access hit")
	}
	if !c.Access(77) {
		t.Fatal("warm access missed")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestL1DirectMappedConflict(t *testing.T) {
	c := NewL1(64 * 64) // 64 lines
	lines := uint64(c.Lines())
	c.Access(0)
	c.Access(lines) // same slot, evicts line 0
	if c.Access(0) {
		t.Error("conflict victim still resident")
	}
}

func TestL1InvalidateRange(t *testing.T) {
	c := NewL1(16 * 1024)
	for i := uint64(0); i < 64; i++ {
		c.Access(100 + i)
	}
	c.InvalidateRange(100, 64)
	for i := uint64(0); i < 64; i++ {
		if c.Access(100 + i) {
			t.Fatalf("line %d survived invalidation", 100+i)
		}
	}
}

func TestL1InvalidateLeavesOthers(t *testing.T) {
	c := NewL1(16 * 1024)
	c.Access(3)
	c.InvalidateRange(1000, 4)
	if !c.Access(3) {
		t.Error("unrelated line invalidated")
	}
}

func TestL1Flush(t *testing.T) {
	c := NewL1(16 * 1024)
	c.Access(5)
	c.Flush()
	if c.Access(5) {
		t.Error("hit after flush")
	}
}

func TestL1MinimumSize(t *testing.T) {
	c := NewL1(1)
	if c.Lines() != 1 {
		t.Errorf("Lines = %d", c.Lines())
	}
	c.Access(9)
	if !c.Access(9) {
		t.Error("single-line cache broken")
	}
}
