package cache

// L1 is an optional per-thread first-level data cache: direct-mapped
// over line numbers. When enabled (Config.L1Bytes), it filters
// repeated same-line accesses before they reach the shared LLC,
// refining the hierarchy toward the paper machine's L1/L2/L3 (Table
// 3). It is off by default: the suite's headline calibration treats
// the LLC as the only cache level.
type L1 struct {
	mask   uint64
	tags   []uint64 // 0 = invalid (tags biased by 1)
	hits   uint64
	misses uint64
}

// NewL1 builds a direct-mapped cache of totalBytes capacity with
// 64-byte lines, rounded down to a power-of-two line count.
func NewL1(totalBytes int) *L1 {
	lines := totalBytes / 64
	if lines < 1 {
		lines = 1
	}
	p := 1
	for p*2 <= lines {
		p *= 2
	}
	return &L1{mask: uint64(p - 1), tags: make([]uint64, p)}
}

// Lines returns the number of line slots.
func (c *L1) Lines() int { return len(c.tags) }

// Access looks up (and on miss installs) the line, reporting a hit.
func (c *L1) Access(line uint64) bool {
	slot := line & c.mask
	tag := line + 1
	if c.tags[slot] == tag {
		c.hits++
		return true
	}
	c.misses++
	c.tags[slot] = tag
	return false
}

// NoteStreakHits records n hits the caller proved without a lookup:
// immediate repeats of a line that is present. A repeat hit reads the
// same slot and moves no state, so this leaves the cache exactly as n
// Access calls would have.
func (c *L1) NoteStreakHits(n uint64) { c.hits += n }

// InvalidateRange removes n consecutive lines starting at line.
func (c *L1) InvalidateRange(line uint64, n uint64) {
	for i := uint64(0); i < n; i++ {
		slot := (line + i) & c.mask
		if c.tags[slot] == line+i+1 {
			c.tags[slot] = 0
		}
	}
}

// Flush invalidates everything.
func (c *L1) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// Stats returns cumulative hits and misses.
func (c *L1) Stats() (hits, misses uint64) { return c.hits, c.misses }
