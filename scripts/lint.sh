#!/bin/sh
# scripts/lint.sh — the pre-PR ritual, in one command:
#
#	go build ./... && go test ./... && go run ./cmd/sgxlint ./...
#
# sgxlint is the in-tree invariant suite (see DESIGN.md §8): it
# type-checks every package with the standard library only, builds a
# module-wide call graph, and enforces determinism, error propagation,
# lock discipline (including interprocedural caller-holds paths),
# saturating cycle arithmetic, context-aware blocking, goroutine
# joining, atomic-field consistency, and streaming-loop error
# handling. It exits non-zero on any unsuppressed finding, so this
# script does too.
#
# Usage: scripts/lint.sh [--fast]
#   --fast  skip the test run (build + lint only)
set -eu
cd "$(dirname "$0")/.."

go build ./...
if [ "${1:-}" != "--fast" ]; then
	go test ./...
fi
go run ./cmd/sgxlint ./...
