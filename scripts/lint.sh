#!/bin/sh
# scripts/lint.sh — the pre-PR ritual, in one command:
#
#	go build ./... && go test ./... && go run ./cmd/sgxlint ./...
#
# sgxlint is the in-tree invariant suite (see DESIGN.md §8): it
# type-checks every package with the standard library only and
# enforces determinism, error propagation, lock discipline, and
# saturating cycle arithmetic. It exits non-zero on any unsuppressed
# finding, so this script does too.
#
# Usage: scripts/lint.sh [--fast]
#   --fast  skip the test run (build + lint only)
set -eu
cd "$(dirname "$0")/.."

go build ./...
if [ "${1:-}" != "--fast" ]; then
	go test ./...
fi
go run ./cmd/sgxlint ./...
