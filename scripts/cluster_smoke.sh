#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke of the sgxgauged sweep cluster:
# a coordinator plus two store-backed workers serve a sweep, then the
# whole fleet is restarted on the same store directories and the same
# sweep must come back byte-identical with zero fresh simulations
# (every spec warm from disk).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/sgxgauged" ./cmd/sgxgauged

cport=$((20000 + RANDOM % 20000))
w1port=$((cport + 1))
w2port=$((cport + 2))
coord="http://127.0.0.1:$cport"

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "cluster_smoke: $1 never became healthy" >&2
  return 1
}

start_fleet() {
  "$workdir/sgxgauged" -addr "127.0.0.1:$cport" -coordinator &
  pids+=($!)
  wait_healthy "$coord"
  "$workdir/sgxgauged" -addr "127.0.0.1:$w1port" -worker "$coord" -store.dir "$workdir/store1" &
  pids+=($!)
  "$workdir/sgxgauged" -addr "127.0.0.1:$w2port" -worker "$coord" -store.dir "$workdir/store2" &
  pids+=($!)
  wait_healthy "http://127.0.0.1:$w1port"
  wait_healthy "http://127.0.0.1:$w2port"
  for _ in $(seq 1 50); do
    curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_workers 2$' && return 0
    sleep 0.2
  done
  echo "cluster_smoke: workers never registered" >&2
  return 1
}

stop_fleet() {
  for pid in "${pids[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
  pids=()
}

sweep='[{"workload":"Empty","mode":"Vanilla","size":"Low","seed":1},
       {"workload":"Empty","mode":"Vanilla","size":"Low","seed":2},
       {"workload":"Empty","mode":"LibOS","size":"Low","seed":3},
       {"workload":"Empty","mode":"Vanilla","size":"Low","seed":4}]'

echo "== pass 1: cold fleet executes the sweep =="
start_fleet
curl -sf -X POST "$coord/v1/sweep" -d "$sweep" | grep '"event":"result"' >"$workdir/pass1.ndjson"
grep -c '"event":"result"' "$workdir/pass1.ndjson" | grep -qx 4
# The fleet did the work: the coordinator ran nothing locally, and
# every spec landed in a worker's store.
curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_local_runs_total 0$'
curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_completed_total 4$'
entries=0
for port in "$w1port" "$w2port"; do
  n=$(curl -sf "http://127.0.0.1:$port/metrics" | sed -n 's/^sgxgauged_store_entries //p')
  entries=$((entries + n))
done
[ "$entries" -eq 4 ] || { echo "cluster_smoke: stores hold $entries entries, want 4" >&2; exit 1; }
stop_fleet

echo "== pass 2: restarted fleet serves the sweep warm from disk =="
start_fleet
curl -sf -X POST "$coord/v1/sweep" -d "$sweep" | grep '"event":"result"' >"$workdir/pass2.ndjson"
cmp "$workdir/pass1.ndjson" "$workdir/pass2.ndjson"
# Zero simulations anywhere: the coordinator still ran nothing, and
# each worker served its shard purely from its store — every store
# read hit (no misses) and nothing new was persisted (no puts).
curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_local_runs_total 0$'
for port in "$w1port" "$w2port"; do
  curl -sf "http://127.0.0.1:$port/metrics" | grep -q '^sgxgauged_store_misses_total 0$'
  curl -sf "http://127.0.0.1:$port/metrics" | grep -q '^sgxgauged_store_puts_total 0$'
done
stop_fleet

echo "cluster_smoke: OK"
