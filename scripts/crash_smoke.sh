#!/usr/bin/env bash
# crash_smoke.sh — kill -9 crash-recovery smoke of the sgxgauged
# durable sweep journal: a journal+store-backed coordinator is
# SIGKILL'd mid-sweep, restarted on the same directories, and must
# replay the journal, finish the job warm from the store, and serve a
# reattached client the full result set byte-identical to an
# uninterrupted standalone sweep. A SIGTERM'd worker must then drain
# gracefully: its deregistration drops the fleet gauge immediately
# instead of waiting out the liveness TTL.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/sgxgauged" ./cmd/sgxgauged

cport=$((20000 + RANDOM % 20000))
wport=$((cport + 1))
rport=$((cport + 2))
coord="http://127.0.0.1:$cport"

wait_healthy() {
  # healthz answers 503 while the journal replay is re-enqueuing, so
  # this also waits out recovery.
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "crash_smoke: $1 never became healthy" >&2
  return 1
}

wait_workers() {
  for _ in $(seq 1 100); do
    curl -sf "$coord/metrics" | grep -q "^sgxgauged_cluster_workers $1\$" && return 0
    sleep 0.2
  done
  echo "crash_smoke: coordinator never saw $1 workers" >&2
  return 1
}

start_coordinator() {
  "$workdir/sgxgauged" -addr "127.0.0.1:$cport" -coordinator \
    -journal.dir "$workdir/journal" -journal.fsync \
    -store.dir "$workdir/cstore" &
  coord_pid=$!
  pids+=($coord_pid)
}

specs=""
for mode in Vanilla LibOS; do
  for seed in $(seq 1 12); do
    specs+="{\"workload\":\"Empty\",\"mode\":\"$mode\",\"size\":\"Low\",\"seed\":$seed},"
  done
done
sweep="[${specs%,}]"
total=24

echo "== boot: journal-backed coordinator + one store-backed worker =="
start_coordinator
wait_healthy "$coord"
# -j 1 serializes the worker so the sweep is still in flight when the
# coordinator is killed.
"$workdir/sgxgauged" -addr "127.0.0.1:$wport" -worker "$coord" \
  -store.dir "$workdir/wstore" -j 1 &
worker_pid=$!
pids+=($worker_pid)
wait_healthy "http://127.0.0.1:$wport"
wait_workers 1

echo "== kill -9 the coordinator mid-sweep =="
(curl -sN -X POST "$coord/v1/sweep" -d "$sweep" >"$workdir/pass1.ndjson" 2>/dev/null || true) &
curl_pid=$!
pids+=($curl_pid)
# The stream's first line is the job header; grab the id the moment it
# lands, then pull the plug.
jobid=""
for _ in $(seq 1 500); do
  jobid=$(sed -n 's/.*"event":"job","id":"\([^"]*\)".*/\1/p' "$workdir/pass1.ndjson" 2>/dev/null | head -1)
  [ -n "$jobid" ] && break
  sleep 0.02
done
[ -n "$jobid" ] || { echo "crash_smoke: sweep never emitted a job header" >&2; exit 1; }
kill -9 "$coord_pid"
wait "$curl_pid" 2>/dev/null || true

echo "== restart on the same journal and store directories =="
start_coordinator
wait_healthy "$coord"
curl -sf "$coord/metrics" | grep '^sgxgauged_journal_replayed_total' |
  awk '{ exit !($2 >= 1) }' ||
  { echo "crash_smoke: restart replayed no journal jobs" >&2; exit 1; }
wait_workers 1

echo "== reattach: the full result set, exactly once, then done =="
curl -sf "$coord/v1/jobs/$jobid" >"$workdir/reattach.ndjson"
grep '"event":"result"' "$workdir/reattach.ndjson" >"$workdir/reattach_results.ndjson" || true
n=$(wc -l <"$workdir/reattach_results.ndjson")
[ "$n" -eq "$total" ] || { echo "crash_smoke: reattach streamed $n results, want $total" >&2; exit 1; }
tail -1 "$workdir/reattach.ndjson" | grep -q '"event":"done".*"ok":true' ||
  { echo "crash_smoke: reattach stream did not end with done ok:true" >&2; exit 1; }

echo "== byte-identical to an uninterrupted standalone sweep =="
"$workdir/sgxgauged" -addr "127.0.0.1:$rport" &
pids+=($!)
wait_healthy "http://127.0.0.1:$rport"
curl -sf -X POST "http://127.0.0.1:$rport/v1/sweep" -d "$sweep" |
  grep '"event":"result"' >"$workdir/reference_results.ndjson"
cmp "$workdir/reattach_results.ndjson" "$workdir/reference_results.ndjson"

echo "== SIGTERM worker: graceful drain beats the TTL =="
kill -TERM "$worker_pid"
wait "$worker_pid" 2>/dev/null || true
# Deregistration is immediate; the 15s liveness TTL never enters into
# it. Give the goodbye post a couple of seconds at most.
for _ in $(seq 1 20); do
  curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_workers 0$' && break
  sleep 0.1
done
curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_workers 0$' ||
  { echo "crash_smoke: drained worker still registered" >&2; exit 1; }
curl -sf "$coord/metrics" | grep -q '^sgxgauged_cluster_drained_workers_total 1$' ||
  { echo "crash_smoke: drain was not counted as a graceful deregistration" >&2; exit 1; }

echo "crash_smoke: OK"
