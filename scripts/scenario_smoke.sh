#!/usr/bin/env bash
# scenario_smoke.sh — end-to-end smoke of attested multi-enclave
# scenarios through the daemon and the sweep cluster: a single node
# runs a sweep of scenario specs, then a coordinator plus two workers
# run the identical sweep, and the result streams must agree
# byte-for-byte. This pins the determinism contract across process
# boundaries: a scenario's interleaving is a pure function of its
# spec, so where it executes (local engine, worker A, worker B) can
# never show in the bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/sgxgauged" ./cmd/sgxgauged

port=$((24000 + RANDOM % 20000))
w1port=$((port + 1))
w2port=$((port + 2))
base="http://127.0.0.1:$port"
epc=2048

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "scenario_smoke: $1 never became healthy" >&2
  return 1
}

stop_fleet() {
  for pid in "${pids[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
  pids=()
}

sweep='[{"mode":"Native","size":"Low","seed":1,"scenario":{"version":1,"name":"attested-session"}},
       {"mode":"Native","size":"Low","seed":2,"scenario":{"version":1,"name":"attested-session"}},
       {"mode":"Native","size":"Low","seed":3,"scenario":{"version":1,"name":"consensus"}},
       {"mode":"Native","size":"Low","seed":4,"scenario":{"version":1,"name":"noisy-neighbor"}}]'

echo "== pass 1: single node runs the scenario sweep =="
"$workdir/sgxgauged" -addr "127.0.0.1:$port" -epc "$epc" &
pids+=($!)
wait_healthy "$base"
# The dedicated endpoint lists and runs scenarios. (Responses land in
# files first: grep -q closing the pipe early makes curl report a
# write error under pipefail.)
curl -sf "$base/v1/scenarios" >"$workdir/list.json"
grep -q '"attested-session"' "$workdir/list.json"
curl -sf -X POST "$base/v1/scenarios" -d '{"name":"consensus","n":2,"seed":9}' >"$workdir/run.json"
grep -q '"name":"consensus"' "$workdir/run.json"
curl -sf -X POST "$base/v1/sweep" -d "$sweep" | grep '"event":"result"' >"$workdir/single.ndjson"
grep -c '"event":"result"' "$workdir/single.ndjson" | grep -qx 4
stop_fleet

echo "== pass 2: coordinator + 2 workers run the identical sweep =="
"$workdir/sgxgauged" -addr "127.0.0.1:$port" -epc "$epc" -coordinator &
pids+=($!)
wait_healthy "$base"
"$workdir/sgxgauged" -addr "127.0.0.1:$w1port" -epc "$epc" -worker "$base" &
pids+=($!)
"$workdir/sgxgauged" -addr "127.0.0.1:$w2port" -epc "$epc" -worker "$base" &
pids+=($!)
wait_healthy "http://127.0.0.1:$w1port"
wait_healthy "http://127.0.0.1:$w2port"
for _ in $(seq 1 50); do
  curl -sf "$base/metrics" >"$workdir/metrics.txt"
  grep -q '^sgxgauged_cluster_workers 2$' "$workdir/metrics.txt" && break
  sleep 0.2
done
grep -q '^sgxgauged_cluster_workers 2$' "$workdir/metrics.txt"

curl -sf -X POST "$base/v1/sweep" -d "$sweep" | grep '"event":"result"' >"$workdir/cluster.ndjson"
# The fleet did the work, not the coordinator's local engine.
curl -sf "$base/metrics" >"$workdir/metrics.txt"
grep -q '^sgxgauged_cluster_local_runs_total 0$' "$workdir/metrics.txt"
grep -q '^sgxgauged_cluster_completed_total 4$' "$workdir/metrics.txt"

cmp "$workdir/single.ndjson" "$workdir/cluster.ndjson"
stop_fleet

echo "scenario_smoke: OK"
