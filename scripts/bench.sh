#!/bin/sh
# scripts/bench.sh — canonical benchmark capture for the BENCH_*.json
# trajectory. Runs the experiment benchmarks once (they are end-to-end
# simulated experiments; one iteration is the measurement) and the
# substrate micro-benchmarks time-based, then folds both into one JSON
# file via benchgate.
#
# Usage: scripts/bench.sh OUT.json [REF-LABEL] [PREV.json]
# When PREV.json is given, its numbers are embedded in OUT.json as the
# `previous` capture (benchgate parse -previous), preserving the
# trajectory across baseline refreshes.
set -eu
out=${1:?usage: scripts/bench.sh OUT.json [REF-LABEL] [PREV.json]}
ref=${2:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}
prev=${3:-}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Experiment benchmarks: one full regeneration each.
go test -run '^$' -bench '^(BenchmarkFigure2|BenchmarkWorkloadBTreeNative)$' \
	-benchtime 1x . | tee "$tmp"

# Substrate micro-benchmarks: time-based for stable ns/op.
go test -run '^$' \
	-bench '^(BenchmarkAccessPage|BenchmarkAccessPageStride|BenchmarkExtentRead|BenchmarkExtentWrite|BenchmarkECall|BenchmarkOCall|BenchmarkMemset|BenchmarkMemcpy|BenchmarkSpaceReadU64)$' \
	-benchtime 0.3s . | tee -a "$tmp"

if [ -n "$prev" ]; then
	go run ./cmd/benchgate parse -ref "$ref" -previous "$prev" -o "$out" <"$tmp"
else
	go run ./cmd/benchgate parse -ref "$ref" -o "$out" <"$tmp"
fi
echo "wrote $out (ref $ref)"
