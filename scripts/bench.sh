#!/bin/sh
# scripts/bench.sh — canonical benchmark capture for the BENCH_*.json
# trajectory. Runs the experiment benchmarks once (they are end-to-end
# simulated experiments; one iteration is the measurement) and the
# substrate micro-benchmarks time-based, then folds both into one JSON
# file via benchgate.
#
# Usage: scripts/bench.sh OUT.json [REF-LABEL]
set -eu
out=${1:?usage: scripts/bench.sh OUT.json [REF-LABEL]}
ref=${2:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Experiment benchmarks: one full regeneration each.
go test -run '^$' -bench '^(BenchmarkFigure2|BenchmarkWorkloadBTreeNative)$' \
	-benchtime 1x . | tee "$tmp"

# Substrate micro-benchmarks: time-based for stable ns/op.
go test -run '^$' \
	-bench '^(BenchmarkAccessPage|BenchmarkAccessPageStride|BenchmarkECall|BenchmarkOCall|BenchmarkMemset|BenchmarkMemcpy|BenchmarkSpaceReadU64)$' \
	-benchtime 0.3s . | tee -a "$tmp"

go run ./cmd/benchgate parse -ref "$ref" -o "$out" <"$tmp"
echo "wrote $out (ref $ref)"
