module sgxgauge

go 1.22
