// Package sgxgauge is a from-scratch Go reproduction of "SGXGauge: A
// Comprehensive Benchmark Suite for Intel SGX" (Kumar, Panda, Sarangi
// — ISPASS 2022).
//
// Because real SGX hardware is not assumed, the repository implements
// a functional and performance simulation of the full SGX stack — the
// Enclave Page Cache with its EPCM, the Memory Encryption Engine
// (real AES-CTR + HMAC on every evicted page), per-thread dTLBs with
// flush-on-transition semantics, a shared LLC, enclave lifecycle with
// real SHA-256 measurement, ECALL/OCALL/AEX transitions, a
// Graphene-style library OS with manifests, trusted-file verification
// and an encrypting protected file system — and re-implements the ten
// suite workloads of the paper's Table 2 as real algorithms running
// against the simulated memory hierarchy.
//
// The library lives under internal/; the executables are:
//
//	cmd/sgxgauge   — run individual workloads and inspect counters
//	cmd/sgxreport  — regenerate every table and figure of the paper
//
// The benchmarks in bench_test.go regenerate each experiment under
// `go test -bench`. See README.md, DESIGN.md and EXPERIMENTS.md.
package sgxgauge
