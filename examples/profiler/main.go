// Profiler demonstrates the sgx-perf/TEEMon-style tooling the paper
// surveys (§3.1.2): it attaches the event collector to a run of the
// EPC-stressing B-Tree workload, prints the per-event profile, and
// then demonstrates the §3.2.1 multi-enclave interference effect —
// several individually-small enclaves thrash a shared EPC.
package main

import (
	"fmt"
	"log"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/trace"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func main() {
	w, err := suite.ByName("BTree")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("profiler: B-Tree, Native mode, High (EPC-thrashing) setting")
	fmt.Println()

	r := harness.NewRunner(sgx.DefaultEPCPages)
	collector := trace.New(50000)
	res, err := r.Run(harness.Spec{
		Workload: w,
		Mode:     sgx.Native,
		Size:     workloads.High,
		Seed:     1,
		Hooks:    harness.Hooks{OnMachine: collector.Attach},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("run time: %d cycles, checksum %#x\n\n", res.Cycles, res.Output.Checksum)
	fmt.Print(collector.Summary())

	fmt.Println()
	fmt.Println("multi-enclave interference (paper §3.2.1): each instance uses")
	fmt.Println("~35% of the EPC, so four or more no longer fit together:")
	fmt.Println()

	points, err := r.MultiEnclave([]int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(harness.RenderMultiEnclave(points, sgx.DefaultEPCPages))
}
