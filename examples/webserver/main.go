// Webserver reproduces the paper's two headline web-serving
// experiments interactively: the Figure 3 latency blow-up of a
// Lighttpd-style server under SGX as client concurrency grows, and the
// Figure 6d rescue via switchless OCALLs.
package main

import (
	"fmt"
	"log"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func main() {
	w, err := suite.ByName("Lighttpd")
	if err != nil {
		log.Fatal(err)
	}

	r := harness.NewRunner(0)
	run := func(spec harness.Spec) *harness.Result {
		res, err := r.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		return res
	}

	fmt.Println("webserver: Lighttpd under closed-loop ab-style load")
	fmt.Println()
	fmt.Printf("%-8s %-22s %-22s %s\n", "clients", "Vanilla latency", "SGX (LibOS) latency", "ratio")

	for _, clients := range []int{1, 2, 4, 8, 16} {
		params := w.DefaultParams(sgx.DefaultEPCPages, workloads.Medium)
		params.Threads = clients
		van := run(harness.Spec{Workload: w, Mode: sgx.Vanilla, Params: &params, Seed: 1})
		lib := run(harness.Spec{Workload: w, Mode: sgx.LibOS, Params: &params, Seed: 1})
		fmt.Printf("%-8d %-22s %-22s %.2fx\n",
			clients,
			fmt.Sprintf("%.1f us", cycles.Micros(uint64(van.Output.MeanLatency))),
			fmt.Sprintf("%.1f us", cycles.Micros(uint64(lib.Output.MeanLatency))),
			lib.Output.MeanLatency/van.Output.MeanLatency)
	}

	fmt.Println()
	fmt.Println("switchless OCALLs at 16 clients (proxy threads answer syscalls")
	fmt.Println("without leaving the enclave, so no TLB flush per request):")

	def := run(harness.Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium, Seed: 1})
	sw := run(harness.Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium, Seed: 1, Switchless: true})
	fmt.Printf("  default:    %.1f us mean, %d dTLB misses, %d OCALLs\n",
		cycles.Micros(uint64(def.Output.MeanLatency)),
		def.Counters.Get(perf.DTLBMisses), def.Counters.Get(perf.OCalls))
	fmt.Printf("  switchless: %.1f us mean, %d dTLB misses, %d switchless calls\n",
		cycles.Micros(uint64(sw.Output.MeanLatency)),
		sw.Counters.Get(perf.DTLBMisses), sw.Counters.Get(perf.SwitchlessCalls))
	fmt.Printf("  latency change: %+.0f%%, dTLB misses change: %+.0f%%\n",
		100*(sw.Output.MeanLatency-def.Output.MeanLatency)/def.Output.MeanLatency,
		100*(float64(sw.Counters.Get(perf.DTLBMisses))-float64(def.Counters.Get(perf.DTLBMisses)))/float64(def.Counters.Get(perf.DTLBMisses)))
}
