// Quickstart: boot a simulated SGX machine, run one benchmark in all
// three execution modes, and compare run time and counters — the
// 30-second tour of the SGXGauge API.
package main

import (
	"fmt"
	"log"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func main() {
	w, err := suite.ByName("BTree")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SGXGauge quickstart: B-Tree at the Medium (~EPC-sized) setting")
	fmt.Println()

	r := harness.NewRunner(0)
	var vanilla *harness.Result
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS} {
		res, err := r.Run(harness.Spec{
			Workload: w,
			Mode:     mode,
			Size:     workloads.Medium,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		if mode == sgx.Vanilla {
			vanilla = res
		}
		fmt.Printf("%-8s run time %10v   checksum %#x\n",
			mode, cycles.Duration(res.Cycles), res.Output.Checksum)
		fmt.Printf("         dTLB misses %-8d page faults %-6d EPC evictions %-6d ECALLs %d\n",
			res.Counters.Get(perf.DTLBMisses),
			res.Counters.Get(perf.PageFaults),
			res.Counters.Get(perf.EPCEvictions),
			res.Counters.Get(perf.ECalls))
		if mode != sgx.Vanilla {
			fmt.Printf("         overhead vs Vanilla: %.2fx\n", harness.Overhead(res, vanilla))
		}
		fmt.Println()
	}

	fmt.Println("Note how the checksums agree — all three modes compute the same")
	fmt.Println("result — while the SGX modes pay for transitions, paging and the MEE.")
}
