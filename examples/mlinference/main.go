// Mlinference protects a machine-learning workflow with the library
// OS: an SVM is trained inside an enclave on data read from the
// untrusted filesystem, and the trained model is stored through the
// protected file system so it never touches disk in plaintext
// (the TensorSCONE/secure-ML scenario the paper cites as motivation
// for the SVM workload, §4).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/libos"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

const (
	rows     = 400
	features = 32
)

func main() {
	m := sgx.NewMachine(sgx.Config{Seed: 11})
	fs := osal.NewFS()

	// Host side: publish the (already public) training data as a
	// trusted input file; the LibOS verifies its hash at open time.
	data, labels := makeDataset()
	fs.Create("train.bin", encodeDataset(data, labels))

	inst, err := libos.Start(m, fs, libos.Manifest{
		Binary:         "svm-train",
		Files:          []string{"train.bin"},
		ProtectedFiles: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	env := inst.Env
	t := env.Main
	fmt.Printf("mlinference: LibOS booted in %v (excluded from training time)\n",
		cycles.Duration(inst.StartupCycles))

	// Application: read the trusted file into enclave memory.
	buf, err := env.Alloc(uint64(rows*(features+1)*8), mem.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	// The input file is hash-verified but stored in plaintext; read
	// it through the shim view (the PF mount is for outputs).
	in, err := inst.ShimFS().Open(t, "train.bin")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := in.ReadAt(t, buf, 0, rows*(features+1)*8); err != nil {
		log.Fatal(err)
	}
	if err := in.Close(t); err != nil {
		log.Fatal(err)
	}

	// Train a perceptron-style linear separator over the enclave
	// copy of the data.
	start := t.Clock.Cycles()
	weights := train(t, buf)
	fmt.Printf("training finished in %v\n", cycles.Duration(t.Clock.Cycles()-start))
	fmt.Printf("training accuracy: %.1f%%\n", accuracy(t, buf, weights)*100)

	// Persist the model through the protected file system: sealed
	// per chunk, unreadable and untamperable from outside.
	model := make([]byte, features*8)
	for i, w := range weights {
		binary.LittleEndian.PutUint64(model[i*8:], math.Float64bits(w))
	}
	staging := env.AllocUntrusted(uint64(len(model)), 8)
	t.Write(staging, model)
	pf := inst.FS()
	out, err := pf.CreateFile(t, "model.pf")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := out.WriteAt(t, staging, 0, len(model)); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(t); err != nil {
		log.Fatal(err)
	}

	raw := fs.Raw("model.pf")
	fmt.Printf("\nmodel persisted: %d plaintext bytes -> %d sealed bytes on the untrusted FS\n",
		len(model), len(raw))
	if containsFloat(raw, weights[0]) {
		log.Fatal("model leaked in plaintext!")
	}
	fmt.Println("raw file bytes do not contain the model weights — PF encryption holds")
	fmt.Printf("\nsimulated totals: %d ECALLs, %d OCALLs, %d EPC evictions\n",
		m.Counters.Get(perf.ECalls), m.Counters.Get(perf.OCalls), m.Counters.Get(perf.EPCEvictions))
}

// makeDataset builds a separable dataset from a hidden weight vector.
func makeDataset() ([][]float64, []float64) {
	rng := newRng(99)
	hidden := make([]float64, features)
	for i := range hidden {
		hidden[i] = rng.norm()
	}
	data := make([][]float64, rows)
	labels := make([]float64, rows)
	for r := range data {
		data[r] = make([]float64, features)
		dot := 0.0
		for f := range data[r] {
			data[r][f] = rng.norm()
			dot += data[r][f] * hidden[f]
		}
		labels[r] = 1
		if dot < 0 {
			labels[r] = -1
		}
	}
	return data, labels
}

func encodeDataset(data [][]float64, labels []float64) []byte {
	out := make([]byte, 0, rows*(features+1)*8)
	var b [8]byte
	for r := range data {
		for _, v := range data[r] {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			out = append(out, b[:]...)
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(labels[r]))
		out = append(out, b[:]...)
	}
	return out
}

// train runs a few perceptron epochs over the in-enclave dataset.
func train(t *sgx.Thread, buf uint64) []float64 {
	w := make([]float64, features)
	for epoch := 0; epoch < 10; epoch++ {
		for r := 0; r < rows; r++ {
			base := buf + uint64(r*(features+1)*8)
			margin := 0.0
			for f := 0; f < features; f++ {
				margin += t.ReadF64(base+uint64(f*8)) * w[f]
			}
			label := t.ReadF64(base + uint64(features*8))
			if margin*label <= 0 {
				for f := 0; f < features; f++ {
					w[f] += 0.1 * label * t.ReadF64(base+uint64(f*8))
				}
			}
		}
	}
	return w
}

func accuracy(t *sgx.Thread, buf uint64, w []float64) float64 {
	correct := 0
	for r := 0; r < rows; r++ {
		base := buf + uint64(r*(features+1)*8)
		margin := 0.0
		for f := 0; f < features; f++ {
			margin += t.ReadF64(base+uint64(f*8)) * w[f]
		}
		if margin*t.ReadF64(base+uint64(features*8)) > 0 {
			correct++
		}
	}
	return float64(correct) / rows
}

func containsFloat(raw []byte, v float64) bool {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	for i := 0; i+8 <= len(raw); i++ {
		match := true
		for j := 0; j < 8; j++ {
			if raw[i+j] != b[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// rng is a tiny deterministic normal sampler (Box-Muller over
// splitmix64) so the example has no dependency on math/rand ordering.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) uniform() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) norm() float64 {
	u1, u2 := r.uniform(), r.uniform()
	if u1 < 1e-18 {
		u1 = 1e-18
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
