// Securekv builds a ShieldStore-style secure key-value service by
// hand on the simulated SGX primitives: a store living in enclave
// memory, accessed through ECALLs, with snapshots sealed to the
// untrusted filesystem using the platform sealing key (paper §4 cites
// several such systems — ShieldStore, EnclaveCache — as the motivation
// for the Memcached workload).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

// kvStore is a fixed-capacity open-addressing table in simulated
// enclave memory: key u64, value u64 per slot (key 0 = empty).
type kvStore struct {
	t     *sgx.Thread
	base  uint64
	slots uint64
}

func newKVStore(env *sgx.Env, slots uint64) (*kvStore, error) {
	base, err := env.Alloc(slots*16, mem.PageSize)
	if err != nil {
		return nil, err
	}
	return &kvStore{t: env.Main, base: base, slots: slots}, nil
}

func (s *kvStore) slot(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return h % s.slots
}

// Put inserts or updates a key (key must be nonzero).
func (s *kvStore) Put(key, val uint64) error {
	for i, h := uint64(0), s.slot(key); i < s.slots; i, h = i+1, (h+1)%s.slots {
		addr := s.base + h*16
		k := s.t.ReadU64(addr)
		if k == 0 || k == key {
			s.t.WriteU64(addr, key)
			s.t.WriteU64(addr+8, val)
			return nil
		}
	}
	return fmt.Errorf("kv: table full")
}

// Get fetches a key.
func (s *kvStore) Get(key uint64) (uint64, bool) {
	for i, h := uint64(0), s.slot(key); i < s.slots; i, h = i+1, (h+1)%s.slots {
		addr := s.base + h*16
		switch s.t.ReadU64(addr) {
		case 0:
			return 0, false
		case key:
			return s.t.ReadU64(addr + 8), true
		}
	}
	return 0, false
}

// snapshot serializes every live entry (host-side representation of
// what the enclave would seal).
func (s *kvStore) snapshot() []byte {
	var out []byte
	for h := uint64(0); h < s.slots; h++ {
		addr := s.base + h*16
		if k := s.t.ReadU64(addr); k != 0 {
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[:8], k)
			binary.LittleEndian.PutUint64(rec[8:], s.t.ReadU64(addr+8))
			out = append(out, rec[:]...)
		}
	}
	return out
}

func main() {
	m := sgx.NewMachine(sgx.Config{Seed: 7})
	env := m.NewEnv(sgx.Native)

	// One enclave hosts the store; size it for 4K entries plus slack.
	const slots = 4096
	if _, err := env.LaunchEnclave(16, 64+slots*16/mem.PageSize); err != nil {
		log.Fatal(err)
	}
	store, err := newKVStore(env, slots)
	if err != nil {
		log.Fatal(err)
	}
	t := env.Main

	// Load 2000 records through ECALLs, like untrusted clients would.
	fmt.Println("securekv: loading 2000 records into the enclave store...")
	t.ECall(func() {
		for k := uint64(1); k <= 2000; k++ {
			if err := store.Put(k, k*k); err != nil {
				log.Fatal(err)
			}
		}
	})

	// Read a few back.
	var v100, v1999 uint64
	t.ECall(func() {
		v100, _ = store.Get(100)
		v1999, _ = store.Get(1999)
	})
	fmt.Printf("  get(100)  = %d\n", v100)
	fmt.Printf("  get(1999) = %d\n", v1999)
	if _, ok := store.Get(99999); ok {
		log.Fatal("phantom key")
	}

	// Seal a snapshot to untrusted storage: only this platform (and
	// enclave identity) can unseal it.
	snap := store.snapshot()
	sealed := m.Engine.Seal(env.Enclave.ID, 1, snap)
	fmt.Printf("\nsealed snapshot: %d plaintext bytes -> %d sealed bytes\n", len(snap), len(sealed))

	// Unseal and verify.
	back, err := m.Engine.Unseal(env.Enclave.ID, 1, sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsealed OK: %d records recovered\n", len(back)/16)

	// Tampering with the sealed blob is detected.
	sealed[40] ^= 1
	if _, err := m.Engine.Unseal(env.Enclave.ID, 1, sealed); err == nil {
		log.Fatal("tampered snapshot unsealed!")
	}
	fmt.Println("tampered snapshot rejected (MAC mismatch) — integrity holds")

	fmt.Printf("\nsimulated cost: %v, %d ECALLs, %d EPC pages allocated\n",
		cycles.Duration(t.Clock.Cycles()),
		m.Counters.Get(perf.ECalls),
		m.Counters.Get(perf.EPCAllocs))
}
