// Command sgxlint runs sgxgauge's in-tree static-analysis suite: the
// invariant checkers of internal/lint (atomicfield, ctxflow,
// determinism, droppederr, goroleak, lockdiscipline, satconv,
// streamerr) over every package of the module, with a shared
// interprocedural call graph backing the concurrency analyzers.
//
// Usage:
//
//	go run ./cmd/sgxlint ./...
//	go run ./cmd/sgxlint -a determinism ./internal/sgx/...
//	go run ./cmd/sgxlint -suppressed ./...
//	go run ./cmd/sgxlint -json ./... > sgxlint.json
//
// Findings print as "file:line: [analyzer] message"; the exit status
// is non-zero when any unsuppressed finding (or type error) exists, so
// CI can gate on it. -json instead emits the full diagnostic set
// (suppressed findings included, with their reasons) as a JSON array
// for machine consumption — CI uploads it as a build artifact. See
// DESIGN.md §8 for the enforced invariants and the //sgxlint:ignore
// suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sgxgauge/internal/lint"
)

func main() {
	analyzerFlag := flag.String("a", "", "comma-separated analyzer subset (default: all)")
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed findings with their reasons")
	jsonOut := flag.Bool("json", false, "emit every finding (suppressed included) as a JSON array instead of text")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	asPath := flag.String("as", "", "lint the single directory argument as a package at this import path (for testdata corpora, which the module walk skips)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sgxlint [flags] [patterns]\n\npatterns are ./... style package patterns (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *analyzerFlag != "" {
		analyzers = nil
		for _, name := range strings.Split(*analyzerFlag, ",") {
			a, ok := lint.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "sgxlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgxlint: %v\n", err)
		os.Exit(2)
	}

	if *asPath != "" {
		if flag.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "sgxlint: -as takes exactly one directory argument\n")
			os.Exit(2)
		}
		_, modPath, err := lint.FindModule(cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgxlint: %v\n", err)
			os.Exit(2)
		}
		diags, err := lint.CheckDirAs(flag.Arg(0), *asPath, modPath, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgxlint: %v\n", err)
			os.Exit(2)
		}
		os.Exit(emitDiags(cwd, diags, *showSuppressed, *jsonOut))
	}

	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgxlint: %v\n", err)
		os.Exit(2)
	}

	match, err := patternMatcher(cwd, mod, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgxlint: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	filtered := &lint.Module{Dir: mod.Dir, Path: mod.Path, Fset: mod.Fset}
	for _, pkg := range mod.Packages {
		if !match(pkg.Path) {
			continue
		}
		filtered.Packages = append(filtered.Packages, pkg)
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "sgxlint: %s: %v\n", pkg.Path, terr)
			exit = 2
		}
	}
	if len(filtered.Packages) == 0 {
		fmt.Fprintf(os.Stderr, "sgxlint: no packages matched %v\n", flag.Args())
		os.Exit(2)
	}

	if code := emitDiags(mod.Dir, lint.RunAnalyzers(filtered, analyzers), *showSuppressed, *jsonOut); code > exit {
		exit = code
	}
	os.Exit(exit)
}

// emitDiags renders findings relative to root — as text, or as a JSON
// array when jsonOut is set — and returns 1 when any unsuppressed
// finding exists, 0 otherwise.
func emitDiags(root string, diags []lint.Diagnostic, showSuppressed, jsonOut bool) int {
	if jsonOut {
		return printJSON(root, diags)
	}
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			if showSuppressed {
				fmt.Printf("%s (suppressed: %s)\n", rel(root, d), d.Reason)
			}
			continue
		}
		fmt.Println(rel(root, d))
		exit = 1
	}
	return exit
}

// jsonDiag is the stable wire shape of one finding in -json output.
// Suppressed findings are always included so the artifact doubles as
// the suppression audit; consumers filter on the suppressed field.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func printJSON(root string, diags []lint.Diagnostic) int {
	out := make([]jsonDiag, 0, len(diags))
	exit := 0
	for _, d := range diags {
		file := d.Pos.Filename
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			file = filepath.ToSlash(r)
		}
		out = append(out, jsonDiag{
			File:       file,
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		})
		if !d.Suppressed {
			exit = 1
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "sgxlint: encoding JSON: %v\n", err)
		return 2
	}
	return exit
}

// rel renders a diagnostic with its path relative to the module root.
func rel(root string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

// patternMatcher turns ./... style arguments into an import-path
// predicate. Supported forms: "./..." (everything), "./dir/..."
// (subtree), "./dir" (one package), and bare import paths with or
// without a trailing /... — enough for the go-tool idioms the scripts
// and CI use.
func patternMatcher(cwd string, mod *lint.Module, args []string) (func(string) bool, error) {
	if len(args) == 0 {
		return func(string) bool { return true }, nil
	}
	var exact []string
	var prefixes []string
	for _, arg := range args {
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
			if arg == "." || arg == "" {
				arg = "./."
			}
		}
		var ip string
		if arg == "." || strings.HasPrefix(arg, "./") || strings.HasPrefix(arg, "../") {
			abs, err := filepath.Abs(filepath.Join(cwd, arg))
			if err != nil {
				return nil, err
			}
			r, err := filepath.Rel(mod.Dir, abs)
			if err != nil || strings.HasPrefix(r, "..") {
				return nil, fmt.Errorf("pattern %q points outside the module", arg)
			}
			if r == "." {
				ip = mod.Path
			} else {
				ip = mod.Path + "/" + filepath.ToSlash(r)
			}
		} else {
			ip = arg
		}
		if recursive {
			prefixes = append(prefixes, ip)
		} else {
			exact = append(exact, ip)
		}
	}
	return func(pkgPath string) bool {
		for _, e := range exact {
			if pkgPath == e {
				return true
			}
		}
		for _, p := range prefixes {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}, nil
}
