// Command benchgate converts `go test -bench` output into the
// BENCH_*.json trajectory files and gates a head capture against a
// committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench ... | benchgate parse -ref HEAD -o BENCH_head.json
//	benchgate compare -base BENCH_baseline.json -head BENCH_head.json -tolerance 0.20
//
// compare exits non-zero when any benchmark present in both files is
// more than the tolerance slower in head than in base.
package main

import (
	"flag"
	"fmt"
	"os"

	"sgxgauge/internal/benchjson"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: benchgate parse [-ref label] [-previous file] [-o out.json] < bench-output\n")
	fmt.Fprintf(os.Stderr, "       benchgate compare -base base.json -head head.json [-tolerance 0.20]\n")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	ref := fs.String("ref", "", "label for the tree these numbers were measured on")
	prev := fs.String("previous", "", "older BENCH_*.json to embed as the previous capture")
	out := fs.String("o", "", "output path (default stdout)")
	fs.Parse(args)

	f, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	f.Ref = *ref
	if *prev != "" {
		old, err := benchjson.Load(*prev)
		if err != nil {
			fatal(err)
		}
		f.Previous = old.Benchmarks
		f.PreviousRef = old.Ref
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := f.Write(w); err != nil {
		fatal(err)
	}
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("base", "", "baseline BENCH_*.json")
	headPath := fs.String("head", "", "head BENCH_*.json")
	tol := fs.Float64("tolerance", 0.20, "allowed slowdown fraction before failing")
	fs.Parse(args)
	if *basePath == "" || *headPath == "" {
		usage()
	}

	base, err := benchjson.Load(*basePath)
	if err != nil {
		fatal(err)
	}
	head, err := benchjson.Load(*headPath)
	if err != nil {
		fatal(err)
	}
	deltas := benchjson.Compare(base, head, *tol)
	if len(deltas) == 0 {
		fatal(fmt.Errorf("no benchmarks in common between %s and %s", *basePath, *headPath))
	}

	bad := 0
	fmt.Printf("%-32s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "ratio")
	for _, d := range deltas {
		mark := ""
		if d.Regress {
			mark = "  REGRESSION"
			bad++
		}
		fmt.Printf("%-32s %14.0f %14.0f %7.2fx%s\n", d.Name, d.BaseNs, d.HeadNs, d.Ratio, mark)
	}
	if bad > 0 {
		fmt.Printf("\n%d benchmark(s) regressed beyond the %.0f%% tolerance vs %s\n",
			bad, *tol*100, refOr(base.Ref, *basePath))
		os.Exit(1)
	}
	fmt.Printf("\nok: no benchmark more than %.0f%% slower than %s\n", *tol*100, refOr(base.Ref, *basePath))
}

func refOr(ref, fallback string) string {
	if ref != "" {
		return ref
	}
	return fallback
}
