// Command sgxgauged is the SGXGauge daemon: a long-running HTTP/JSON
// service that runs simulated SGX benchmarks on demand.
//
// Usage:
//
//	sgxgauged [-addr host:port] [-epc pages] [-seed n] [-j workers]
//	          [-cache entries] [-drain timeout]
//
// Endpoints:
//
//	POST /v1/run            run one spec (SpecWire JSON in, result out)
//	POST /v1/sweep          run a spec list, NDJSON progress stream out
//	GET  /v1/figures/{fig}  regenerate a paper figure/table (2-10, t2, t4, t5)
//	GET  /v1/results/{key}  content-addressed result lookup (SHA-256 of the spec)
//	GET  /metrics           Prometheus text metrics
//	GET  /healthz           liveness probe
//
// Identical specs are cached and concurrent identical requests
// coalesce onto one run; see README "Serving" for the wire schema and
// curl examples.
package main

import (
	"fmt"
	"os"

	"sgxgauge/internal/serve"
)

func main() {
	if err := serve.Main(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
