// Command sgxgauged is the SGXGauge daemon: a long-running HTTP/JSON
// service that runs simulated SGX benchmarks on demand.
//
// Usage:
//
//	sgxgauged [-addr host:port] [-epc pages] [-seed n] [-j workers]
//	          [-cache entries] [-drain timeout]
//	          [-store.dir dir] [-store.fsync]
//	          [-journal.dir dir] [-journal.fsync]
//	          [-admission.max specs]
//	          [-coordinator [-worker.ttl d] [-task.retries n] | -worker url]
//
// Endpoints:
//
//	POST /v1/run            run one spec (SpecWire JSON in, result out)
//	POST /v1/sweep          run a spec list, NDJSON job/progress/result stream out
//	GET  /v1/jobs/{id}      reattach to a live or recovered job's result stream
//	GET  /v1/figures/{fig}  regenerate a paper figure/table (2-10, t2, t4, t5)
//	GET  /v1/results/{key}  content-addressed result lookup (SHA-256 of the spec)
//	GET  /metrics           Prometheus text metrics
//	GET  /healthz           role-aware liveness (503 while a journal replay runs)
//
// Identical specs are cached and concurrent identical requests
// coalesce onto one run. With -journal.dir every accepted job is
// write-ahead-logged: a killed daemon restarted on the same
// directories replays unfinished jobs (store-warm tasks do not
// re-simulate) and clients reattach by job ID. Jobs past the
// -admission.max queue high-water mark are shed with 429 +
// Retry-After. With -coordinator, execution farms out to registered
// workers (-worker url on each): tasks carry per-attempt retry
// budgets and are poisoned — failed with their attempt history —
// past -task.retries; a SIGTERM'd worker drains its in-flight batch
// and deregisters. See README "Serving" for the wire schema and curl
// examples, and DESIGN.md paragraph 10 for the architecture.
package main

import (
	"fmt"
	"os"

	"sgxgauge/internal/serve"
)

func main() {
	if err := serve.Main(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
