package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// cmdScenario runs one multi-enclave scenario:
//
//	sgxgauge scenario consensus -n 4
//
// The scenario name is positional; -n scales the default cast, -size
// and -ops override the cast uniformly, and the machine-level flags
// (-epc, -seed, -quantum, -slowpath) mirror "run".
func cmdScenario(args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sgxgauge scenario <name> [flags]\nscenarios: %s\nflags:\n",
			workloads.ValidScenarioList())
		fs.PrintDefaults()
	}
	n := fs.Int("n", 0, "enclave count (0 = scenario default cast)")
	sizeStr := fs.String("size", "", "override every enclave's input setting (Low|Medium|High)")
	ops := fs.Int("ops", 0, "override every enclave's op count (0 = scenario default)")
	quantum := fs.Uint64("quantum", 0, "scheduler quantum in cycles (0 = default)")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "random seed")
	showCounters := fs.Bool("counters", false, "print all performance counters")
	slowPath := fs.Bool("slowpath", false, "use the straight-line reference access path (identical results, slower wall-clock; for cross-checking)")

	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		fs.Usage()
		os.Exit(2)
	}
	name := args[0]
	fs.Parse(args[1:])

	spec, err := harness.NewScenarioSpec(name, *n)
	if err != nil {
		fatal(err)
	}
	if *sizeStr != "" {
		size, err := parseSize(*sizeStr)
		if err != nil {
			fatal(err)
		}
		for i := range spec.Scenario.Enclaves {
			spec.Scenario.Enclaves[i].Size = size
		}
	}
	if *ops > 0 {
		for i := range spec.Scenario.Enclaves {
			spec.Scenario.Enclaves[i].Ops = *ops
		}
	}
	spec.Scenario.Quantum = *quantum
	spec.EPCPages = *epcPages
	spec.Seed = *seed
	if *slowPath {
		spec.Machine = &sgx.Config{SlowPath: true}
	}

	res, err := new(harness.Runner).Run(spec)
	if err != nil {
		fatal(err)
	}
	if res.Err != nil {
		fatal(res.Err)
	}

	fmt.Printf("scenario:  %s\n", res.Name)
	fmt.Printf("cast:      ")
	for i, e := range spec.Scenario.Enclaves {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s/%s", e.Role, e.Size)
	}
	fmt.Println()
	fmt.Printf("run time:  %v (%d cycles)\n", cycles.Duration(res.Cycles), res.Cycles)
	if res.StartupCycles > 0 {
		fmt.Printf("startup:   %v (excluded)\n", cycles.Duration(res.StartupCycles))
	}
	fmt.Printf("checksum:  %#x\n", res.Output.Checksum)
	fmt.Printf("ops:       %d\n", res.Output.Ops)
	if res.Output.MeanLatency > 0 {
		fmt.Printf("latency:   %.1f us mean\n", cycles.Micros(uint64(res.Output.MeanLatency)))
	}
	if len(res.Output.Extra) > 0 {
		keys := make([]string, 0, len(res.Output.Extra))
		for k := range res.Output.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("metrics:")
		for _, k := range keys {
			fmt.Printf("  %-20s %g\n", k, res.Output.Extra[k])
		}
	}
	key := []perf.Event{
		perf.DTLBMisses, perf.WalkCycles, perf.StallCycles, perf.LLCMisses,
		perf.PageFaults, perf.EPCEvictions, perf.EPCLoadBacks,
		perf.ECalls, perf.OCalls, perf.AEXs,
	}
	fmt.Println("counters (measured portion):")
	for _, e := range key {
		fmt.Printf("  %-16s %d\n", e.String(), res.Counters.Get(e))
	}
	if *showCounters {
		fmt.Println("all counters:")
		for _, e := range perf.Events() {
			fmt.Printf("  %-16s %d\n", e.String(), res.Counters.Get(e))
		}
	}
}
