package main

import (
	"flag"
	"fmt"
	"os"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/trace"
	"sgxgauge/internal/workloads/suite"
)

// cmdTrace runs one workload with an sgx-perf-style event collector
// attached and prints a per-event summary (or the raw CSV stream).
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	name := fs.String("workload", "", "workload name (see 'sgxgauge list')")
	modeStr := fs.String("mode", "Native", "execution mode")
	sizeStr := fs.String("size", "Medium", "input setting")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "random seed")
	csv := fs.Bool("csv", false, "dump raw events as CSV instead of the summary")
	keep := fs.Int("keep", 100000, "max raw events retained for -csv")
	fs.Parse(args)

	if *name == "" {
		fs.Usage()
		os.Exit(2)
	}
	w, err := suite.ByName(*name)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}

	collector := trace.New(*keep)
	res, err := new(harness.Runner).Run(harness.Spec{
		Workload: w,
		Mode:     mode,
		Size:     size,
		EPCPages: *epcPages,
		Seed:     *seed,
		Hooks:    harness.Hooks{OnMachine: collector.Attach},
	})
	if err != nil {
		fatal(err)
	}
	if res.Err != nil {
		fatal(res.Err)
	}

	if *csv {
		fmt.Print(collector.CSV())
		return
	}
	fmt.Printf("trace of %s (%s, %s mode), run time %d cycles\n\n", res.Name, size, mode, res.Cycles)
	fmt.Print(collector.Summary())
}
