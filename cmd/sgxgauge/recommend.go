package main

import (
	"flag"
	"fmt"
	"os"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
)

// cmdRecommend implements the Appendix C workflow: given the SGX
// component a proposal targets, rank the suite's workloads by how hard
// they stress it.
func cmdRecommend(args []string) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	component := fs.String("component", "", "SGX component to stress (epc, transitions, mee, syscalls)")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "random seed")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.Parse(args)

	if *component == "" {
		fs.Usage()
		os.Exit(2)
	}
	c, err := harness.ParseComponent(*component)
	if err != nil {
		fatal(err)
	}
	r := harness.NewRunner(*epcPages)
	r.Seed = *seed
	r.Jobs = *jobs
	recs, err := r.Recommend(c)
	if err != nil {
		fatal(err)
	}
	fmt.Print(harness.RenderRecommendations(c, recs))
}
