package main

import (
	"flag"
	"fmt"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

// cmdMatrix runs the paper's main experiment grid — every workload in
// every supported mode at every input setting — on the parallel
// engine and emits one CSV row per cell, with overheads against the
// same-size Vanilla run. This is the full-matrix regeneration path;
// -j controls the worker pool.
func cmdMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "random seed")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-run progress to stderr")
	fs.Parse(args)

	r := harness.NewRunner(*epcPages)
	r.Seed = *seed
	r.Jobs = *jobs
	if *progress {
		r.Progress = progressPrinter()
	}

	specs := harness.MatrixSpecs()
	results, err := r.RunAll(specs)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
	}

	// The Vanilla cell of each (workload, size) is in the batch;
	// index it for the overhead column.
	type cell struct {
		name string
		size string
	}
	vanilla := map[cell]*harness.Result{}
	for i, spec := range specs {
		if spec.Mode == sgx.Vanilla {
			vanilla[cell{spec.Workload.Name(), spec.Size.String()}] = results[i]
		}
	}

	fmt.Println("workload,mode,size,cycles,overhead_vs_vanilla,dtlb_misses,page_faults,epc_evictions,epc_loadbacks")
	for i, spec := range specs {
		res := results[i]
		van := vanilla[cell{spec.Workload.Name(), spec.Size.String()}]
		fmt.Printf("%s,%s,%s,%d,%.3f,%d,%d,%d,%d\n",
			res.Name, res.Mode, spec.Size, res.Cycles,
			harness.Overhead(res, van),
			res.Counters.Get(perf.DTLBMisses),
			res.Counters.Get(perf.PageFaults),
			res.Counters.Get(perf.EPCEvictions),
			res.Counters.Get(perf.EPCLoadBacks))
	}
}
