package main

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

func TestParseMode(t *testing.T) {
	cases := map[string]sgx.Mode{
		"Vanilla": sgx.Vanilla, "vanilla": sgx.Vanilla,
		"Native": sgx.Native, "native": sgx.Native,
		"LibOS": sgx.LibOS, "libos": sgx.LibOS,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMode("SIM"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]workloads.Size{
		"Low": workloads.Low, "low": workloads.Low,
		"Medium": workloads.Medium, "medium": workloads.Medium,
		"High": workloads.High, "high": workloads.High,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSize("XL"); err == nil {
		t.Error("unknown size accepted")
	}
}
