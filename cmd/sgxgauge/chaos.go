package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads/suite"
)

// cmdChaos sweeps one workload across fault-injection intensities and
// prints the degradation table: run time, slowdown against the clean
// baseline, and per-class fault counts at each rate.
func cmdChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	name := fs.String("workload", "BTree", "workload name (see 'sgxgauge list')")
	modeStr := fs.String("mode", "Native", "execution mode")
	sizeStr := fs.String("size", "Medium", "input setting")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "workload random seed")
	chaosSeed := fs.Uint64("chaos-seed", 1, "fault injector seed; equal seeds reproduce runs exactly")
	rateList := fs.String("fault-rate", "0,0.0005,0.002,0.01,0.05",
		"comma-separated per-opportunity fault rates to sweep (0 = clean baseline)")
	aex := fs.Bool("aex", true, "inject AEX interrupt storms")
	balloon := fs.Bool("balloon", true, "inject EPC ballooning (OS resizes the EPC mid-run)")
	tamper := fs.Bool("tamper", true, "inject untrusted-memory attacks on evicted pages")
	transition := fs.Bool("transition", true, "inject transient ECALL/OCALL transition failures")
	retries := fs.Int("retries", 2, "retry attempts for transient injected faults")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base retry backoff (doubles per attempt; wall-clock only)")
	workers := fs.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-run progress on stderr")
	fs.Parse(args)

	w, err := suite.ByName(*name)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	rates, err := parseRates(*rateList)
	if err != nil {
		fatal(err)
	}

	template := chaos.Config{
		Seed:            *chaosSeed,
		AEXStorm:        *aex,
		EPCBalloon:      *balloon,
		MemTamper:       *tamper,
		TransitionFault: *transition,
	}
	base := harness.Spec{
		Workload: w,
		Mode:     mode,
		Size:     size,
		EPCPages: *epcPages,
		Seed:     *seed,
	}

	opts := []harness.Option{
		harness.Workers(*workers),
		harness.Retry(*retries),
		harness.RetryBackoff(*backoff),
	}
	if *progress {
		opts = append(opts, harness.OnProgress(progressPrinter()))
	}

	points, err := harness.ChaosSweep(base, template, rates, opts...)
	if err != nil {
		fatal(err)
	}

	classes := []string{}
	for _, c := range []struct {
		on   bool
		name string
	}{
		{*aex, chaos.AEXStorm.String()},
		{*balloon, chaos.EPCBalloon.String()},
		{*tamper, chaos.MemTamper.String()},
		{*transition, chaos.TransitionFault.String()},
	} {
		if c.on {
			classes = append(classes, c.name)
		}
	}
	fmt.Printf("workload: %s (%s, %v mode), chaos seed %d, classes: %s\n\n",
		w.Name(), size, mode, *chaosSeed, strings.Join(classes, ", "))
	fmt.Print(harness.RenderChaosTable(points))
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := strconv.ParseFloat(p, 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad fault rate %q (want numbers in [0, 1])", p)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no fault rates given")
	}
	return rates, nil
}
