// Command sgxgauge runs individual SGXGauge workloads on the simulated
// SGX machine and reports run time and performance counters.
//
// Usage:
//
//	sgxgauge list
//	sgxgauge run -workload BTree [-mode Native] [-size Medium]
//	              [-epc pages] [-seed n] [-switchless] [-pf] [-counters]
//	sgxgauge ops [-epc pages]
//	sgxgauge matrix [-epc pages] [-j workers]
//	sgxgauge chaos [-workload BTree] [-chaos-seed n] [-fault-rate 0,0.01,...]
//
// "list" prints the suite; "run" executes one workload; "ops" reports
// the latencies of the core SGX driver operations (Figure 7);
// "matrix" regenerates the full (workload x mode x size) grid on the
// parallel engine; "chaos" sweeps a workload across adversarial-OS
// fault-injection intensities and prints the degradation table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/serve"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "run":
		cmdRun(os.Args[2:])
	case "scenario":
		cmdScenario(os.Args[2:])
	case "ops":
		cmdOps(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "matrix":
		cmdMatrix(os.Args[2:])
	case "chaos":
		cmdChaos(os.Args[2:])
	case "recommend":
		cmdRecommend(os.Args[2:])
	case "serve":
		if err := serve.Main(os.Args[2:]); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sgxgauge list
  sgxgauge run   -workload <name> [-mode Vanilla|Native|LibOS] [-size Low|Medium|High]
                 [-epc pages] [-seed n] [-switchless] [-pf] [-counters]
  sgxgauge scenario <name> [-n enclaves] [-size Low|Medium|High] [-ops n] [-quantum cycles]
                 [-epc pages] [-seed n] [-slowpath] [-counters]
  sgxgauge ops   [-epc pages]
  sgxgauge trace -workload <name> [-mode ...] [-size ...] [-epc pages] [-csv]
  sgxgauge sweep [-epc list] [-workloads list] [-mode ...] [-size ...] [-j workers] [-progress]
  sgxgauge matrix [-epc pages] [-seed n] [-j workers] [-progress]
  sgxgauge chaos [-workload <name>] [-mode ...] [-size ...] [-chaos-seed n] [-fault-rate list]
                 [-aex] [-balloon] [-tamper] [-transition] [-retries n] [-j workers] [-progress]
  sgxgauge recommend -component epc|transitions|mee|syscalls [-epc pages] [-j workers]
  sgxgauge serve [-addr host:port] [-epc pages] [-seed n] [-j workers] [-cache entries]`)
}

// progressPrinter returns a harness progress callback reporting
// completed/total and per-spec wall time on stderr.
func progressPrinter() func(harness.Progress) {
	return func(p harness.Progress) {
		status := ""
		if p.Err != nil {
			status = "  FAILED: " + p.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s/%v %v%s\n",
			p.Completed, p.Total, p.Name, p.Mode, p.Wall.Round(time.Millisecond), status)
	}
}

func cmdList() {
	// Both tables derive from the shared registry, so an entry
	// registered anywhere (suite workloads, scenarios) lists here
	// without this command knowing about it.
	fmt.Printf("%-18s %-38s %s\n", "Workload", "Property", "Modes")
	for _, d := range workloads.Descriptors() {
		if d.Scenario {
			continue
		}
		w := d.New()
		modes := "Vanilla, LibOS"
		if w.NativePort() {
			modes = "Vanilla, Native, LibOS"
		}
		fmt.Printf("%-18s %-38s %s\n", d.Name, d.Property, modes)
	}
	if names := workloads.ScenarioNames(); len(names) > 0 {
		fmt.Printf("\n%-18s %s\n", "Scenario", "Property")
		for _, name := range names {
			d, _ := workloads.Lookup(name)
			fmt.Printf("%-18s %s\n", d.Name, d.Property)
		}
	}
}

func parseMode(s string) (sgx.Mode, error) { return sgx.ParseMode(s) }

func parseSize(s string) (workloads.Size, error) { return workloads.ParseSize(s) }

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("workload", "", "workload name (see 'sgxgauge list')")
	modeStr := fs.String("mode", "Vanilla", "execution mode")
	sizeStr := fs.String("size", "Medium", "input setting")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	seed := fs.Int64("seed", 1, "random seed")
	switchless := fs.Bool("switchless", false, "enable switchless OCALLs")
	pf := fs.Bool("pf", false, "enable LibOS protected files")
	showCounters := fs.Bool("counters", false, "print all performance counters")
	slowPath := fs.Bool("slowpath", false, "use the straight-line reference access path (identical results, slower wall-clock; for cross-checking)")
	fs.Parse(args)

	if *name == "" {
		fs.Usage()
		os.Exit(2)
	}
	w, err := suite.ByName(*name)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}

	spec := harness.Spec{
		Workload:       w,
		Mode:           mode,
		Size:           size,
		EPCPages:       *epcPages,
		Seed:           *seed,
		Switchless:     *switchless,
		ProtectedFiles: *pf,
	}
	if *slowPath {
		spec.Machine = &sgx.Config{SlowPath: true}
	}
	res, err := new(harness.Runner).Run(spec)
	if err != nil {
		fatal(err)
	}
	if res.Err != nil {
		fatal(res.Err)
	}

	fmt.Printf("workload:  %s (%s, %s mode)\n", res.Name, size, mode)
	fmt.Printf("settings:  %v\n", res.Params.Knobs)
	fmt.Printf("run time:  %v (%d cycles)\n", cycles.Duration(res.Cycles), res.Cycles)
	if res.StartupCycles > 0 {
		fmt.Printf("startup:   %v (excluded)\n", cycles.Duration(res.StartupCycles))
	}
	fmt.Printf("checksum:  %#x\n", res.Output.Checksum)
	fmt.Printf("ops:       %d\n", res.Output.Ops)
	if res.Output.MeanLatency > 0 {
		fmt.Printf("latency:   %.1f us mean\n", cycles.Micros(uint64(res.Output.MeanLatency)))
	}
	key := []perf.Event{
		perf.DTLBMisses, perf.WalkCycles, perf.StallCycles, perf.LLCMisses,
		perf.PageFaults, perf.EPCEvictions, perf.EPCLoadBacks,
		perf.ECalls, perf.OCalls, perf.AEXs,
	}
	fmt.Println("counters (measured portion):")
	for _, e := range key {
		fmt.Printf("  %-16s %d\n", e.String(), res.Counters.Get(e))
	}
	if *showCounters {
		fmt.Println("all counters:")
		for _, e := range perf.Events() {
			fmt.Printf("  %-16s %d\n", e.String(), res.Counters.Get(e))
		}
	}
}

func cmdOps(args []string) {
	fs := flag.NewFlagSet("ops", flag.ExitOnError)
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages")
	fs.Parse(args)

	r := harness.NewRunner(*epcPages)
	r.Seed = 1
	rows, err := r.Figure7()
	if err != nil {
		fatal(err)
	}
	fmt.Println(harness.RenderFigure7(rows))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sgxgauge: %v\n", err)
	os.Exit(1)
}
