package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// cmdSweep runs a (workload x EPC size) grid in one mode/size and
// emits a CSV of run times and key counters — the raw material for
// sensitivity plots (how does each workload's overhead move as the
// EPC grows?). The whole grid is batched through the parallel engine;
// -j controls the worker pool and CSV rows keep the serial order.
func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	epcList := fs.String("epc", "128,256,512", "comma-separated EPC sizes in pages")
	wlList := fs.String("workloads", "BTree,HashJoin,BFS", "comma-separated workload names")
	modeStr := fs.String("mode", "Native", "execution mode")
	sizeStr := fs.String("size", "Medium", "input setting")
	seed := fs.Int64("seed", 1, "random seed")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-run progress to stderr")
	fs.Parse(args)

	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}

	var epcs []int
	for _, s := range strings.Split(*epcList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad EPC size %q", s))
		}
		epcs = append(epcs, v)
	}

	var ws []workloads.Workload
	for _, name := range strings.Split(*wlList, ",") {
		w, err := suite.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		if mode == sgx.Native && !w.NativePort() {
			fmt.Fprintf(os.Stderr, "sgxgauge: skipping %s (no Native port)\n", w.Name())
			continue
		}
		ws = append(ws, w)
	}

	// Two specs per cell — the measured mode and its Vanilla baseline —
	// in CSV row order. The runner dedupes repeats within the batch.
	var specs []harness.Spec
	for _, w := range ws {
		for _, epc := range epcs {
			specs = append(specs,
				harness.Spec{Workload: w, Mode: mode, Size: size, EPCPages: epc, Seed: *seed},
				harness.Spec{Workload: w, Mode: sgx.Vanilla, Size: size, EPCPages: epc, Seed: *seed})
		}
	}

	r := harness.NewRunner(sgx.DefaultEPCPages)
	r.Seed = *seed
	r.Jobs = *jobs
	if *progress {
		r.Progress = progressPrinter()
	}
	results, err := r.RunAll(specs)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
	}

	fmt.Println("workload,mode,size,epc_pages,cycles,overhead_vs_vanilla,dtlb_misses,page_faults,epc_evictions,epc_loadbacks")
	i := 0
	for _, w := range ws {
		for _, epc := range epcs {
			res, van := results[i], results[i+1]
			i += 2
			fmt.Printf("%s,%s,%s,%d,%d,%.3f,%d,%d,%d,%d\n",
				w.Name(), mode, size, epc, res.Cycles,
				harness.Overhead(res, van),
				res.Counters.Get(perf.DTLBMisses),
				res.Counters.Get(perf.PageFaults),
				res.Counters.Get(perf.EPCEvictions),
				res.Counters.Get(perf.EPCLoadBacks))
		}
	}
}
