package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads/suite"
)

// cmdSweep runs a (workload x EPC size) grid in one mode/size and
// emits a CSV of run times and key counters — the raw material for
// sensitivity plots (how does each workload's overhead move as the
// EPC grows?).
func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	epcList := fs.String("epc", "128,256,512", "comma-separated EPC sizes in pages")
	wlList := fs.String("workloads", "BTree,HashJoin,BFS", "comma-separated workload names")
	modeStr := fs.String("mode", "Native", "execution mode")
	sizeStr := fs.String("size", "Medium", "input setting")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}

	var epcs []int
	for _, s := range strings.Split(*epcList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad EPC size %q", s))
		}
		epcs = append(epcs, v)
	}

	fmt.Println("workload,mode,size,epc_pages,cycles,overhead_vs_vanilla,dtlb_misses,page_faults,epc_evictions,epc_loadbacks")
	for _, name := range strings.Split(*wlList, ",") {
		w, err := suite.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		if mode == sgx.Native && !w.NativePort() {
			fmt.Fprintf(os.Stderr, "sgxgauge: skipping %s (no Native port)\n", w.Name())
			continue
		}
		for _, epc := range epcs {
			res, err := harness.Run(harness.Spec{Workload: w, Mode: mode, Size: size, EPCPages: epc, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			van, err := harness.Run(harness.Spec{Workload: w, Mode: sgx.Vanilla, Size: size, EPCPages: epc, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s,%s,%s,%d,%d,%.3f,%d,%d,%d,%d\n",
				w.Name(), mode, size, epc, res.Cycles,
				harness.Overhead(res, van),
				res.Counters.Get(perf.DTLBMisses),
				res.Counters.Get(perf.PageFaults),
				res.Counters.Get(perf.EPCEvictions),
				res.Counters.Get(perf.EPCLoadBacks))
		}
	}
}
