// Command sgxreport regenerates every table and figure of the
// SGXGauge paper's evaluation against the simulated SGX machine.
//
// Usage:
//
//	sgxreport [-epc pages] [-exp id[,id...]] [-j workers] [-progress]
//
// Experiment ids: fig2 fig3 fig4 tab2 tab4 fig5 fig6a fig6bc fig6d
// fig7 fig8 tab5 fig9 fig10, or "all" (default). Runs within an
// experiment execute on a parallel worker pool (-j); results are
// identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
)

func main() {
	epcPages := flag.Int("epc", sgx.DefaultEPCPages, "simulated EPC size in 4 KiB pages (paper hardware: 23552)")
	exps := flag.String("exp", "all", "comma-separated experiment ids (fig2,fig3,fig4,tab2,tab4,fig5,fig6a,fig6bc,fig6d,fig7,fig8,tab5,fig9,fig10,multi) or 'all'")
	seed := flag.Int64("seed", 1, "base random seed")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-run progress to stderr")
	flag.Parse()

	r := harness.NewRunner(*epcPages)
	r.Seed = *seed
	r.Jobs = *jobs
	if *progress {
		r.Progress = func(p harness.Progress) {
			status := ""
			if p.Err != nil {
				status = "  FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%v %v%s\n",
				p.Completed, p.Total, p.Name, p.Mode, p.Wall.Round(time.Millisecond), status)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	type experiment struct {
		id  string
		run func() (string, error)
	}
	experiments := []experiment{
		{"tab2", func() (string, error) {
			rows, err := r.Table2()
			if err != nil {
				return "", err
			}
			return harness.RenderTable2(rows), nil
		}},
		{"fig2", func() (string, error) {
			d, err := r.Figure2()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig3", func() (string, error) {
			pts, err := r.Figure3()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure3(pts), nil
		}},
		{"fig4", func() (string, error) {
			rows, err := r.Figure4()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure4(rows), nil
		}},
		{"tab4", func() (string, error) {
			d, err := r.Table4()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig5", func() (string, error) {
			rows, err := r.Figure5()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure5(rows), nil
		}},
		{"fig6a", func() (string, error) {
			d, err := r.Figure6a()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig6bc", func() (string, error) {
			rows, err := r.Figure6bc()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure6bc(rows), nil
		}},
		{"fig6d", func() (string, error) {
			d, err := r.Figure6d()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig7", func() (string, error) {
			rows, err := r.Figure7()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure7(rows), nil
		}},
		{"fig8", func() (string, error) {
			d, err := r.Figure8()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"tab5", func() (string, error) {
			rows, err := r.Table5()
			if err != nil {
				return "", err
			}
			return harness.RenderTable5(rows), nil
		}},
		{"fig9", func() (string, error) {
			d, err := r.Figure9()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig10", func() (string, error) {
			rows, err := r.Figure10()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure10(rows), nil
		}},
		{"multi", func() (string, error) {
			points, err := r.MultiEnclave([]int{1, 2, 4, 8})
			if err != nil {
				return "", err
			}
			return harness.RenderMultiEnclave(points, *epcPages), nil
		}},
	}

	fmt.Printf("SGXGauge report — simulated EPC: %d pages (%d MiB equivalent scale)\n\n",
		*epcPages, *epcPages*4/1024)
	ran := 0
	for _, e := range experiments {
		if !sel(e.id) {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgxreport: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s] (generated in %v)\n%s\n", e.id, time.Since(start).Round(time.Millisecond), out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sgxreport: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
}
