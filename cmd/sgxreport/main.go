// Command sgxreport regenerates every table and figure of the
// SGXGauge paper's evaluation against the simulated SGX machine.
//
// Usage:
//
//	sgxreport [-epc pages] [-exp id[,id...]] [-j workers] [-progress]
//
// Experiment ids: fig2 fig3 fig4 tab2 tab4 fig5 fig6a fig6bc fig6d
// fig7 fig8 tab5 fig9 fig10, or "all" (default). The list comes from
// harness.Experiments(), the same registry the sgxgauged daemon's
// /v1/figures endpoint serves. Runs within an experiment execute on a
// parallel worker pool (-j); results are identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
)

func main() {
	epcPages := flag.Int("epc", sgx.DefaultEPCPages, "simulated EPC size in 4 KiB pages (paper hardware: 23552)")
	exps := flag.String("exp", "all", "comma-separated experiment ids (fig2,fig3,fig4,tab2,tab4,fig5,fig6a,fig6bc,fig6d,fig7,fig8,tab5,fig9,fig10,multi) or 'all'")
	seed := flag.Int64("seed", 1, "base random seed")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-run progress to stderr")
	flag.Parse()

	r := harness.NewRunner(*epcPages)
	r.Seed = *seed
	r.Jobs = *jobs
	if *progress {
		r.Progress = func(p harness.Progress) {
			status := ""
			if p.Err != nil {
				status = "  FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%v %v%s\n",
				p.Completed, p.Total, p.Name, p.Mode, p.Wall.Round(time.Millisecond), status)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	fmt.Printf("SGXGauge report — simulated EPC: %d pages (%d MiB equivalent scale)\n\n",
		*epcPages, *epcPages*4/1024)
	ran := 0
	for _, e := range harness.Experiments() {
		if !all && !want[e.ID] {
			continue
		}
		start := time.Now()
		out, err := e.Render(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgxreport: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s] (generated in %v)\n%s\n", e.ID, time.Since(start).Round(time.Millisecond), out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sgxreport: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
}
